#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Property-based tests for the performance model.

use mcpat::ProcessorConfig;
use mcpat_mcore::config::CoreConfig;
use mcpat_sim::{SystemModel, WorkloadProfile};
use mcpat_tech::TechNode;
use proptest::prelude::*;

fn any_workload() -> impl Strategy<Value = WorkloadProfile> {
    prop::sample::select(vec![
        WorkloadProfile::compute_bound(),
        WorkloadProfile::memory_bound(),
        WorkloadProfile::balanced(),
        WorkloadProfile::server_transactional(),
        WorkloadProfile::splash_like(),
    ])
}

fn manycore(cores: u32, cluster: u32) -> ProcessorConfig {
    ProcessorConfig::manycore(
        "prop",
        TechNode::N32,
        CoreConfig::generic_inorder(),
        cores,
        cluster,
        u64::from(cluster) * 1024 * 1024,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn simulation_is_deterministic(wl in any_workload(), insts in 1_000_000u64..50_000_000) {
        let cfg = manycore(8, 2);
        let sys = SystemModel::new(&cfg);
        let a = sys.simulate(&wl, insts);
        let b = sys.simulate(&wl, insts);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn time_scales_linearly_with_instruction_budget(
        wl in any_workload(),
        insts in 1_000_000u64..20_000_000,
        k in 2u64..8,
    ) {
        let cfg = manycore(4, 2);
        let sys = SystemModel::new(&cfg);
        let t1 = sys.simulate(&wl, insts).seconds;
        let tk = sys.simulate(&wl, insts * k).seconds;
        let ratio = tk / t1;
        prop_assert!((ratio - k as f64).abs() < 0.01 * k as f64, "ratio {ratio}");
    }

    #[test]
    fn ipc_never_exceeds_issue_width(wl in any_workload(), cores in 1u32..16) {
        let cluster = if cores.is_multiple_of(2) { 2 } else { 1 };
        let cfg = manycore(cores, cluster);
        let run = SystemModel::new(&cfg).simulate(&wl, 5_000_000);
        prop_assert!(run.ipc_per_core <= f64::from(cfg.core.issue_width) + 1e-9);
        prop_assert!(run.ipc_per_core > 0.0);
    }

    #[test]
    fn stats_counters_are_internally_consistent(wl in any_workload(), insts in 1_000_000u64..20_000_000) {
        let cfg = manycore(8, 4);
        let run = SystemModel::new(&cfg).simulate(&wl, insts);
        let c = &run.stats.cores[0];
        prop_assert_eq!(c.commits, insts);
        prop_assert!(c.idle_cycles <= c.cycles);
        prop_assert!(c.dcache_misses <= c.dcache_reads + c.dcache_writes);
        prop_assert!(c.icache_misses <= c.icache_accesses);
        prop_assert!(c.branch_mispredicts <= c.branches);
        prop_assert!(run.stats.duration_s > 0.0);
        prop_assert!(run.mem_bw_utilization >= 0.0 && run.mem_bw_utilization <= 1.0);
    }

    #[test]
    fn bigger_l1_never_hurts_ipc(wl in any_workload()) {
        let mut small = manycore(4, 2);
        small.core.dcache = mcpat_array::cache::CacheSpec::new("d", 8 * 1024, 64, 2);
        let mut big = manycore(4, 2);
        big.core.dcache = mcpat_array::cache::CacheSpec::new("d", 64 * 1024, 64, 2);
        let r_small = SystemModel::new(&small).simulate(&wl, 5_000_000);
        let r_big = SystemModel::new(&big).simulate(&wl, 5_000_000);
        prop_assert!(r_big.ipc_per_core >= r_small.ipc_per_core * 0.999);
    }

    #[test]
    fn perturbed_workloads_still_simulate(seed in 0u64..1_000) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let wl = WorkloadProfile::balanced().perturbed(&mut rng, 0.4);
        let cfg = manycore(4, 2);
        let run = SystemModel::new(&cfg).simulate(&wl, 2_000_000);
        prop_assert!(run.seconds > 0.0 && run.seconds.is_finite());
        prop_assert!(run.aggregate_ips > 0.0);
    }
}
