//! Analytic cache miss-rate curves.
//!
//! Miss rates follow the empirical √2-rule (a power law in cache
//! capacity relative to the working set) with a compulsory-miss floor —
//! the standard analytic stand-in for trace-driven simulation.

/// Compulsory (cold + coherence) miss floor.
const COMPULSORY_FLOOR: f64 = 0.0015;

/// Miss rate at the point where capacity equals the working set.
const MISS_AT_WS: f64 = 0.005;

/// Miss rate when the cache is far smaller than the working set.
const MISS_CEILING: f64 = 0.35;

/// Power-law exponent of the miss-rate curve (≈ the square-root rule).
const EXPONENT: f64 = 0.5;

/// Predicted miss rate (misses per access) of a cache of
/// `capacity_bytes` against a working set of `working_set_bytes`.
///
/// # Examples
///
/// ```
/// use mcpat_sim::miss_rate;
/// let small = miss_rate(8 * 1024, 8 * 1024 * 1024);
/// let big = miss_rate(4 * 1024 * 1024, 8 * 1024 * 1024);
/// assert!(small > big, "bigger caches miss less");
/// ```
#[must_use]
pub fn miss_rate(capacity_bytes: u64, working_set_bytes: u64) -> f64 {
    if capacity_bytes == 0 {
        return MISS_CEILING;
    }
    let ratio = capacity_bytes as f64 / working_set_bytes.max(1) as f64;
    if ratio >= 1.0 {
        // Working set fits: only compulsory misses, decaying slowly with
        // extra headroom.
        (MISS_AT_WS * ratio.powf(-0.25)).max(COMPULSORY_FLOOR)
    } else {
        (MISS_AT_WS * ratio.powf(-EXPONENT)).min(MISS_CEILING)
    }
}

/// Miss rate of a shared cache whose capacity is divided among
/// `sharers` cores running the same working set each (no constructive
/// sharing beyond `shared_fraction` of the footprint).
#[must_use]
pub fn shared_miss_rate(
    capacity_bytes: u64,
    working_set_bytes: u64,
    sharers: u32,
    shared_fraction: f64,
) -> f64 {
    let sf = shared_fraction.clamp(0.0, 1.0);
    let effective_ws = working_set_bytes as f64 * (sf + (1.0 - sf) * f64::from(sharers.max(1)));
    miss_rate(capacity_bytes, effective_ws as u64)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_capacity() {
        let ws = 16 * 1024 * 1024;
        let mut last = 1.0;
        for cap in [
            4 * 1024,
            64 * 1024,
            1024 * 1024,
            16 * 1024 * 1024,
            256 * 1024 * 1024,
        ] {
            let m = miss_rate(cap, ws);
            assert!(m <= last, "cap {cap}: {m} > {last}");
            last = m;
        }
    }

    #[test]
    fn bounded_by_floor_and_ceiling() {
        assert!(miss_rate(1, 1 << 30) <= MISS_CEILING);
        assert!(miss_rate(1 << 30, 1024) >= COMPULSORY_FLOOR);
    }

    #[test]
    fn sqrt_rule_holds_in_the_middle() {
        let ws = 64 * 1024 * 1024;
        let m1 = miss_rate(1024 * 1024, ws);
        let m4 = miss_rate(4 * 1024 * 1024, ws);
        // 4× capacity → ≈2× fewer misses.
        assert!((m1 / m4 - 2.0).abs() < 0.2, "ratio {}", m1 / m4);
    }

    #[test]
    fn sharing_increases_pressure() {
        let cap = 2 * 1024 * 1024;
        let ws = 1024 * 1024;
        let alone = shared_miss_rate(cap, ws, 1, 0.0);
        let crowded = shared_miss_rate(cap, ws, 8, 0.0);
        let shared = shared_miss_rate(cap, ws, 8, 1.0);
        assert!(crowded > alone);
        assert!(shared < crowded, "fully shared footprint behaves like one");
    }

    #[test]
    fn zero_capacity_is_ceiling() {
        assert_eq!(miss_rate(0, 1024), MISS_CEILING);
    }
}
