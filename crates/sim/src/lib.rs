//! # mcpat-sim — an analytic multicore performance model
//!
//! McPAT deliberately contains no performance simulator: the paper feeds
//! it activity statistics from M5 running parallel workloads. Neither M5
//! nor its workloads are available here, so this crate provides the
//! closest synthetic equivalent: an **analytic performance model** that
//! turns a [`WorkloadProfile`] (instruction mix, locality, ILP) plus a
//! `mcpat::ProcessorConfig` into
//!
//! * end-to-end execution time / throughput, and
//! * a `mcpat::ChipStats` with internally consistent event counts for
//!   every component the power model charges.
//!
//! The model captures the first-order effects the case study depends on:
//! issue-width- and ILP-limited IPC, in-order vs out-of-order stall
//! hiding, multithreading, cache miss-rate curves vs capacity, NoC hop
//! latency, and memory-bandwidth saturation across many cores.
//!
//! ```
//! use mcpat::ProcessorConfig;
//! use mcpat_sim::{SystemModel, WorkloadProfile};
//!
//! let cfg = ProcessorConfig::niagara();
//! let wl = WorkloadProfile::server_transactional();
//! let result = SystemModel::new(&cfg).simulate(&wl, 100_000_000);
//! assert!(result.seconds > 0.0);
//! assert!(result.stats.cores[0].commits > 0);
//! ```

pub mod cachesim;
pub mod cpu;
pub mod system;
pub mod trace;
pub mod workload;

pub use cachesim::miss_rate;
pub use cpu::{CoreTiming, CpuModel};
pub use system::{SimResult, SystemModel};
pub use trace::{run_trace, TraceGenerator, TraceOp, TraceResult};
pub use workload::WorkloadProfile;
