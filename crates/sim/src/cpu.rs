//! The analytic per-core CPI model.

use crate::cachesim::miss_rate;
use crate::workload::WorkloadProfile;
use mcpat_mcore::config::{CoreConfig, MachineType};

/// Fraction of raw I-cache miss probability charged per instruction:
/// instructions are fetched in groups, so one line miss is amortized
/// over the instructions sharing the fetch block.
const ICACHE_MISS_AMORTIZATION: f64 = 0.3;

/// Latencies seen by one core, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreTiming {
    /// L1 hit latency (already pipelined away for independent ops).
    pub l1_hit_cycles: f64,
    /// L2 hit latency (including fabric hops to the bank).
    pub l2_cycles: f64,
    /// L3 hit latency, if an L3 exists.
    pub l3_cycles: f64,
    /// Main-memory latency.
    pub mem_cycles: f64,
}

impl Default for CoreTiming {
    fn default() -> CoreTiming {
        CoreTiming {
            l1_hit_cycles: 2.0,
            l2_cycles: 20.0,
            l3_cycles: 45.0,
            mem_cycles: 220.0,
        }
    }
}

/// Per-instruction event rates and the resulting timing of one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreResult {
    /// Core-level IPC (all threads combined).
    pub ipc: f64,
    /// Single-thread busy fraction (1 = never stalled).
    pub thread_busy: f64,
    /// L1-D misses per instruction.
    pub l1d_mpki: f64,
    /// L1-I misses per instruction.
    pub l1i_mpki: f64,
    /// L2 misses per instruction (of this core's traffic).
    pub l2_mpki: f64,
}

/// The analytic CPU model for one core configuration.
#[derive(Debug, Clone)]
pub struct CpuModel {
    cfg: CoreConfig,
}

impl CpuModel {
    /// Wraps a core configuration.
    #[must_use]
    pub fn new(cfg: &CoreConfig) -> CpuModel {
        CpuModel { cfg: cfg.clone() }
    }

    /// Issue efficiency: the fraction of the nominal width a machine
    /// sustains on dependence-free code.
    fn issue_efficiency(&self) -> f64 {
        match self.cfg.machine_type {
            MachineType::OutOfOrder => 0.85,
            MachineType::InOrder => 0.65,
        }
    }

    /// How much of a miss latency the machine hides with independent work.
    fn miss_hiding(&self) -> (f64, f64) {
        match self.cfg.machine_type {
            // (short-miss hide, long-miss hide)
            MachineType::OutOfOrder => (0.6, 0.3),
            MachineType::InOrder => (0.15, 0.05),
        }
    }

    /// ILP the pipeline can actually exploit.
    fn exploitable_ilp(&self, wl: &WorkloadProfile) -> f64 {
        match self.cfg.machine_type {
            MachineType::OutOfOrder => {
                // Window-limited: a 2× bigger window exposes ~√2 more ILP.
                let window_factor =
                    (f64::from(self.cfg.instruction_window_size.max(8)) / 32.0).powf(0.25);
                wl.ilp * window_factor.min(1.5)
            }
            MachineType::InOrder => wl.ilp.min(1.8),
        }
    }

    /// Evaluates one core running `threads_active` software threads of
    /// the workload, with the given `l2_miss_rate` (computed at system
    /// level from sharing) and latencies.
    #[must_use]
    pub fn evaluate(
        &self,
        wl: &WorkloadProfile,
        timing: &CoreTiming,
        l2_miss_rate: f64,
        has_l3: bool,
        threads_active: u32,
    ) -> CoreResult {
        let cfg = &self.cfg;
        let ipc_nostall = (f64::from(cfg.issue_width) * self.issue_efficiency())
            .min(self.exploitable_ilp(wl))
            .max(0.1);
        let cpi_nostall = 1.0 / ipc_nostall;

        let (hide_short, hide_long) = self.miss_hiding();

        // Cache events per instruction.
        let l1d_mr = miss_rate(cfg.dcache.capacity, wl.data_working_set);
        let l1i_mr = miss_rate(cfg.icache.capacity, wl.inst_working_set) * ICACHE_MISS_AMORTIZATION;
        let l1d_mpki = wl.frac_mem() * l1d_mr;
        let l1i_mpki = l1i_mr;
        let l2_mpki = (l1d_mpki + l1i_mpki) * l2_miss_rate;

        // Stall components, cycles per instruction.
        let branch_cpi = wl.frac_branch * wl.mispredict_rate * f64::from(cfg.pipeline_depth) * 0.7;
        let l2_cpi = (l1d_mpki + l1i_mpki) * timing.l2_cycles * (1.0 - hide_short);
        let long_lat = if has_l3 {
            // An L3 catches ~60% of L2 misses in addition to the
            // sharing-locality fraction.
            let l3_hit = 0.6;
            wl.l2_miss_locality * timing.l3_cycles
                + (1.0 - wl.l2_miss_locality)
                    * (l3_hit * timing.l3_cycles + (1.0 - l3_hit) * timing.mem_cycles)
        } else {
            wl.l2_miss_locality * timing.l2_cycles * 2.0
                + (1.0 - wl.l2_miss_locality) * timing.mem_cycles
        };
        let mem_cpi = l2_mpki * long_lat * (1.0 - hide_long);

        let cpi_thread = cpi_nostall + branch_cpi + l2_cpi + mem_cpi;
        let thread_busy = (cpi_nostall / cpi_thread).clamp(0.0, 1.0);

        // Fine-grained multithreading fills stall slots: the core is
        // issuing whenever at least one thread is ready.
        let t = f64::from(threads_active.clamp(1, cfg.threads));
        let utilization = 1.0 - (1.0 - thread_busy).powf(t);
        let ipc = ipc_nostall * utilization;

        CoreResult {
            ipc,
            thread_busy,
            l1d_mpki,
            l1i_mpki,
            l2_mpki,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn timing() -> CoreTiming {
        CoreTiming::default()
    }

    #[test]
    fn ooo_beats_inorder_single_thread() {
        let wl = WorkloadProfile::balanced();
        let ooo = CpuModel::new(&CoreConfig::alpha21364_like());
        let io = CpuModel::new(&CoreConfig::niagara_like());
        let r_ooo = ooo.evaluate(&wl, &timing(), 0.2, false, 1);
        let r_io = io.evaluate(&wl, &timing(), 0.2, false, 1);
        assert!(r_ooo.ipc > 1.5 * r_io.ipc, "{} vs {}", r_ooo.ipc, r_io.ipc);
    }

    #[test]
    fn multithreading_recovers_inorder_throughput() {
        let wl = WorkloadProfile::server_transactional();
        let io = CpuModel::new(&CoreConfig::niagara_like());
        let one = io.evaluate(&wl, &timing(), 0.3, false, 1);
        let four = io.evaluate(&wl, &timing(), 0.3, false, 4);
        assert!(four.ipc > 1.8 * one.ipc, "{} vs {}", four.ipc, one.ipc);
    }

    #[test]
    fn memory_bound_work_is_slower() {
        let cpu = CpuModel::new(&CoreConfig::generic_ooo());
        let fast = cpu.evaluate(&WorkloadProfile::compute_bound(), &timing(), 0.1, false, 1);
        let slow = cpu.evaluate(&WorkloadProfile::memory_bound(), &timing(), 0.4, false, 1);
        assert!(fast.ipc > 2.0 * slow.ipc);
    }

    #[test]
    fn ipc_bounded_by_issue_width() {
        let cpu = CpuModel::new(&CoreConfig::generic_ooo());
        let r = cpu.evaluate(&WorkloadProfile::compute_bound(), &timing(), 0.0, false, 1);
        assert!(r.ipc <= 4.0);
        assert!(r.ipc > 1.0);
    }

    #[test]
    fn l3_reduces_long_stalls() {
        let cpu = CpuModel::new(&CoreConfig::generic_ooo());
        let wl = WorkloadProfile::memory_bound();
        let with = cpu.evaluate(&wl, &timing(), 0.4, true, 1);
        let without = cpu.evaluate(&wl, &timing(), 0.4, false, 1);
        assert!(with.ipc > without.ipc);
    }
}
