//! Synthetic workload profiles.
//!
//! A profile condenses what a trace-driven simulator would extract from
//! a benchmark: the instruction mix, the available instruction-level
//! parallelism, branch behavior, and memory locality (expressed as a
//! working-set size that the cache model turns into miss-rate curves).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A statistical description of one workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Fraction of instructions that are integer ALU ops.
    pub frac_int: f64,
    /// Fraction that are FP ops.
    pub frac_fp: f64,
    /// Fraction that are complex (mul/div) ops.
    pub frac_mul: f64,
    /// Fraction that are loads.
    pub frac_load: f64,
    /// Fraction that are stores.
    pub frac_store: f64,
    /// Fraction that are branches.
    pub frac_branch: f64,
    /// Branch misprediction rate (of branches).
    pub mispredict_rate: f64,
    /// Mean exploitable instruction-level parallelism (dataflow limit).
    pub ilp: f64,
    /// Primary data working-set size, bytes.
    pub data_working_set: u64,
    /// Instruction working-set size, bytes.
    pub inst_working_set: u64,
    /// Fraction of L2 misses that are serviced by other caches/L3 rather
    /// than memory (sharing locality).
    pub l2_miss_locality: f64,
    /// Thread-level parallelism available (≥ 1; caps useful threads).
    pub tlp: f64,
}

impl WorkloadProfile {
    /// A CPU-bound kernel: high ILP, small working set, few misses.
    #[must_use]
    pub fn compute_bound() -> WorkloadProfile {
        WorkloadProfile {
            frac_int: 0.48,
            frac_fp: 0.12,
            frac_mul: 0.02,
            frac_load: 0.20,
            frac_store: 0.08,
            frac_branch: 0.10,
            mispredict_rate: 0.02,
            ilp: 3.5,
            data_working_set: 24 * 1024,
            inst_working_set: 12 * 1024,
            l2_miss_locality: 0.1,
            tlp: 1e9,
        }
    }

    /// A memory-bound streaming workload: large working set, modest ILP.
    #[must_use]
    pub fn memory_bound() -> WorkloadProfile {
        WorkloadProfile {
            frac_int: 0.35,
            frac_fp: 0.10,
            frac_mul: 0.01,
            frac_load: 0.30,
            frac_store: 0.14,
            frac_branch: 0.10,
            mispredict_rate: 0.04,
            ilp: 2.0,
            data_working_set: 64 * 1024 * 1024,
            inst_working_set: 32 * 1024,
            l2_miss_locality: 0.05,
            tlp: 1e9,
        }
    }

    /// A balanced SPEC-like mix.
    #[must_use]
    pub fn balanced() -> WorkloadProfile {
        WorkloadProfile {
            frac_int: 0.42,
            frac_fp: 0.08,
            frac_mul: 0.02,
            frac_load: 0.25,
            frac_store: 0.11,
            frac_branch: 0.12,
            mispredict_rate: 0.05,
            ilp: 2.6,
            data_working_set: 2 * 1024 * 1024,
            inst_working_set: 64 * 1024,
            l2_miss_locality: 0.15,
            tlp: 1e9,
        }
    }

    /// A throughput server / transaction-processing mix: poor locality,
    /// low ILP, abundant TLP (the Niagara design target).
    #[must_use]
    pub fn server_transactional() -> WorkloadProfile {
        WorkloadProfile {
            frac_int: 0.40,
            frac_fp: 0.01,
            frac_mul: 0.01,
            frac_load: 0.28,
            frac_store: 0.12,
            frac_branch: 0.18,
            mispredict_rate: 0.08,
            ilp: 1.4,
            data_working_set: 16 * 1024 * 1024,
            inst_working_set: 512 * 1024,
            l2_miss_locality: 0.3,
            tlp: 1e9,
        }
    }

    /// A SPLASH-2-style shared-memory parallel scientific mix — the
    /// closest stand-in for the paper's case-study workloads.
    #[must_use]
    pub fn splash_like() -> WorkloadProfile {
        WorkloadProfile {
            frac_int: 0.35,
            frac_fp: 0.22,
            frac_mul: 0.03,
            frac_load: 0.22,
            frac_store: 0.08,
            frac_branch: 0.10,
            mispredict_rate: 0.03,
            ilp: 2.8,
            data_working_set: 8 * 1024 * 1024,
            inst_working_set: 48 * 1024,
            l2_miss_locality: 0.25,
            tlp: 1e9,
        }
    }

    /// A web-serving mix: branchy request handling, large instruction
    /// footprint, moderate data locality, high TLP.
    #[must_use]
    pub fn web_serving() -> WorkloadProfile {
        WorkloadProfile {
            frac_int: 0.44,
            frac_fp: 0.01,
            frac_mul: 0.01,
            frac_load: 0.26,
            frac_store: 0.10,
            frac_branch: 0.18,
            mispredict_rate: 0.06,
            ilp: 1.8,
            data_working_set: 4 * 1024 * 1024,
            inst_working_set: 1024 * 1024,
            l2_miss_locality: 0.2,
            tlp: 1e9,
        }
    }

    /// An HPC stencil kernel: streaming FP with predictable branches and
    /// a working set that tiles into the L2.
    #[must_use]
    pub fn hpc_stencil() -> WorkloadProfile {
        WorkloadProfile {
            frac_int: 0.25,
            frac_fp: 0.32,
            frac_mul: 0.02,
            frac_load: 0.26,
            frac_store: 0.10,
            frac_branch: 0.05,
            mispredict_rate: 0.01,
            ilp: 3.2,
            data_working_set: 3 * 1024 * 1024,
            inst_working_set: 8 * 1024,
            l2_miss_locality: 0.1,
            tlp: 1e9,
        }
    }

    /// An in-memory analytics scan: sequential reads over a huge
    /// footprint, almost no FP, bandwidth-bound.
    #[must_use]
    pub fn analytics_scan() -> WorkloadProfile {
        WorkloadProfile {
            frac_int: 0.40,
            frac_fp: 0.02,
            frac_mul: 0.01,
            frac_load: 0.34,
            frac_store: 0.08,
            frac_branch: 0.15,
            mispredict_rate: 0.02,
            ilp: 2.4,
            data_working_set: 256 * 1024 * 1024,
            inst_working_set: 24 * 1024,
            l2_miss_locality: 0.02,
            tlp: 1e9,
        }
    }

    /// A randomized perturbation of this profile (±`spread` relative on
    /// the continuous fields), for sensitivity sweeps.
    #[must_use]
    pub fn perturbed<R: Rng>(&self, rng: &mut R, spread: f64) -> WorkloadProfile {
        let mut p = *self;
        let mut jitter = |v: f64| v * (1.0 + rng.gen_range(-spread..=spread));
        p.ilp = jitter(p.ilp).max(1.0);
        p.mispredict_rate = jitter(p.mispredict_rate).clamp(0.0, 0.5);
        p.data_working_set = (jitter(p.data_working_set as f64) as u64).max(1024);
        p.l2_miss_locality = jitter(p.l2_miss_locality).clamp(0.0, 1.0);
        p
    }

    /// The total memory-operation fraction.
    #[must_use]
    pub fn frac_mem(&self) -> f64 {
        self.frac_load + self.frac_store
    }

    /// Validates the profile: the instruction mix must sum to ≈ 1 and
    /// every field must be finite and sensible. Collects all findings.
    #[must_use]
    pub fn validate(&self) -> mcpat_diag::Diagnostics {
        let mut d = mcpat_diag::Diagnostics::new();
        for (field, v) in [
            ("frac_int", self.frac_int),
            ("frac_fp", self.frac_fp),
            ("frac_mul", self.frac_mul),
            ("frac_load", self.frac_load),
            ("frac_store", self.frac_store),
            ("frac_branch", self.frac_branch),
        ] {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                d.error(field, format!("mix fraction must be in [0, 1], got {v}"));
            }
        }
        let sum = self.frac_int
            + self.frac_fp
            + self.frac_mul
            + self.frac_load
            + self.frac_store
            + self.frac_branch;
        if !d.has_errors() && (sum - 1.0).abs() > 0.02 {
            d.error("", format!("instruction mix sums to {sum:.4}, not 1"));
        }
        d.require_positive("ilp", "ILP", self.ilp);
        if !(self.mispredict_rate.is_finite() && (0.0..=1.0).contains(&self.mispredict_rate)) {
            d.error(
                "mispredict_rate",
                format!("must be in [0, 1], got {}", self.mispredict_rate),
            );
        }
        if !(self.l2_miss_locality.is_finite() && (0.0..=1.0).contains(&self.l2_miss_locality)) {
            d.error(
                "l2_miss_locality",
                format!("must be in [0, 1], got {}", self.l2_miss_locality),
            );
        }
        d
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preset_mixes_sum_to_one() {
        for wl in [
            WorkloadProfile::compute_bound(),
            WorkloadProfile::memory_bound(),
            WorkloadProfile::balanced(),
            WorkloadProfile::server_transactional(),
            WorkloadProfile::splash_like(),
            WorkloadProfile::web_serving(),
            WorkloadProfile::hpc_stencil(),
            WorkloadProfile::analytics_scan(),
        ] {
            let d = wl.validate();
            assert!(!d.has_errors(), "{d}");
        }
    }

    #[test]
    fn analytics_is_the_most_memory_hungry_preset() {
        let a = WorkloadProfile::analytics_scan();
        for other in [
            WorkloadProfile::compute_bound(),
            WorkloadProfile::web_serving(),
            WorkloadProfile::hpc_stencil(),
        ] {
            assert!(a.data_working_set > other.data_working_set);
        }
    }

    #[test]
    fn perturbation_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let base = WorkloadProfile::balanced();
        for _ in 0..100 {
            let p = base.perturbed(&mut rng, 0.3);
            assert!(p.ilp >= 1.0);
            assert!(p.mispredict_rate <= 0.5);
            assert!((0.0..=1.0).contains(&p.l2_miss_locality));
        }
    }

    #[test]
    fn compute_bound_has_more_ilp_than_server() {
        assert!(WorkloadProfile::compute_bound().ilp > WorkloadProfile::server_transactional().ilp);
    }
}
