//! Multicore system assembly: combines the per-core CPI model with
//! shared-cache pressure, fabric latency and memory-bandwidth
//! saturation, and emits `mcpat::ChipStats`.

use crate::cachesim::shared_miss_rate;
use crate::cpu::{CoreTiming, CpuModel};
use crate::workload::WorkloadProfile;
use mcpat::stats::ChipStats;
use mcpat::ProcessorConfig;
use mcpat_interconnect::noc::NocStats;
use mcpat_mcore::stats::CoreStats;
use mcpat_uncore::memctrl::MemCtrlStats;
use mcpat_uncore::shared_cache::SharedCacheStats;

/// DRAM round-trip latency, seconds.
const MEM_LATENCY_S: f64 = 80e-9;

/// Base L2 pipeline latency, cycles.
const L2_BASE_CYCLES: f64 = 14.0;

/// Fabric hop latency, cycles.
const HOP_CYCLES: f64 = 3.0;

/// The result of one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Wall-clock time to retire the instruction budget, s.
    pub seconds: f64,
    /// Per-core IPC after bandwidth throttling.
    pub ipc_per_core: f64,
    /// Aggregate committed instructions per second.
    pub aggregate_ips: f64,
    /// Fraction of peak memory bandwidth consumed (≤ 1).
    pub mem_bw_utilization: f64,
    /// Activity statistics for the power model.
    pub stats: ChipStats,
}

/// The system-level analytic model.
#[derive(Debug, Clone)]
pub struct SystemModel {
    config: ProcessorConfig,
    cpu: CpuModel,
}

impl SystemModel {
    /// Wraps a processor configuration.
    #[must_use]
    pub fn new(config: &ProcessorConfig) -> SystemModel {
        SystemModel {
            config: config.clone(),
            cpu: CpuModel::new(&config.core),
        }
    }

    /// Latencies implied by the configuration.
    fn timing(&self) -> CoreTiming {
        let hops = self.config.fabric.topology.average_hops();
        let l2_cycles = L2_BASE_CYCLES + hops * HOP_CYCLES;
        let mem_cycles = MEM_LATENCY_S * self.config.clock_hz + l2_cycles;
        CoreTiming {
            l1_hit_cycles: 2.0,
            l2_cycles,
            l3_cycles: l2_cycles * 2.2,
            mem_cycles,
        }
    }

    /// Peak DRAM bandwidth of the configuration, bytes/s.
    fn mem_bandwidth(&self) -> f64 {
        self.config
            .mc
            .as_ref()
            .map_or(self.config.io_bandwidth, |mc| {
                f64::from(mc.channels) * mc.peak_bw_per_channel
            })
    }

    /// Runs the model: every core retires `insts_per_core` instructions
    /// of the workload (weak scaling, the paper's throughput setup).
    #[must_use]
    pub fn simulate(&self, wl: &WorkloadProfile, insts_per_core: u64) -> SimResult {
        let cfg = &self.config;
        let timing = self.timing();

        // Shared L2 pressure: each cluster's cores contend for one L2.
        let l2_capacity = cfg.l2.as_ref().map_or(0, |l| l.cache.capacity);
        let sharers = cfg.cores_per_cluster();
        let l2_mr = if l2_capacity > 0 {
            shared_miss_rate(
                l2_capacity,
                wl.data_working_set,
                sharers,
                wl.l2_miss_locality,
            )
        } else {
            1.0
        };

        let threads = (wl.tlp / f64::from(cfg.num_cores)).max(1.0) as u32;
        let core_r = self
            .cpu
            .evaluate(wl, &timing, l2_mr, cfg.l3.is_some(), threads);

        // Memory bandwidth saturation across all cores.
        let n = f64::from(cfg.num_cores);
        let inst_rate_unthrottled = core_r.ipc * cfg.clock_hz * n;
        let mem_miss_per_inst =
            core_r.l2_mpki * (1.0 - wl.l2_miss_locality) * if cfg.l3.is_some() { 0.4 } else { 1.0 };
        let bytes_per_inst = mem_miss_per_inst * 64.0 * 1.3; // + writebacks
        let demand = inst_rate_unthrottled * bytes_per_inst;
        let bw = self.mem_bandwidth().max(1.0);
        let throttle = (bw / demand.max(1e-3)).min(1.0);

        let ipc_core = core_r.ipc * throttle;
        let cycles = (insts_per_core as f64 / ipc_core.max(1e-6)).ceil();
        let seconds = cycles / cfg.clock_hz;
        let aggregate_ips = insts_per_core as f64 * n / seconds;
        let mem_bw_utilization = (demand * throttle / bw).min(1.0);

        let stats = self.build_stats(wl, insts_per_core, cycles as u64, &core_r, seconds);
        SimResult {
            seconds,
            ipc_per_core: ipc_core,
            aggregate_ips,
            mem_bw_utilization,
            stats,
        }
    }

    /// Runs a phased execution: each `(workload, instructions)` phase is
    /// simulated in sequence, producing one result per phase — the input
    /// for runtime power *traces* (power vs time).
    #[must_use]
    pub fn simulate_phases(&self, phases: &[(WorkloadProfile, u64)]) -> Vec<SimResult> {
        phases
            .iter()
            .map(|(wl, insts)| self.simulate(wl, *insts))
            .collect()
    }

    /// Runs a multiprogrammed mix: core `i` runs `workloads[i %
    /// workloads.len()]`. Each core retires `insts_per_core`
    /// instructions; the interval ends when the slowest core finishes
    /// (others idle-wait, which the power model sees as idle cycles).
    ///
    /// An empty `workloads` slice falls back to the balanced preset on
    /// every core.
    #[must_use]
    pub fn simulate_multiprogram(
        &self,
        workloads: &[WorkloadProfile],
        insts_per_core: u64,
    ) -> SimResult {
        if workloads.is_empty() {
            return self.simulate_multiprogram(&[WorkloadProfile::balanced()], insts_per_core);
        }
        let cfg = &self.config;
        let n = cfg.num_cores as usize;
        // Evaluate each distinct workload once.
        let runs: Vec<SimResult> = workloads
            .iter()
            .map(|wl| self.simulate(wl, insts_per_core))
            .collect();
        let slowest = runs.iter().map(|r| r.seconds).fold(0.0f64, f64::max);
        let total_cycles = (slowest * cfg.clock_hz).ceil() as u64;

        // Per-core stats: each core keeps its own event counts but is
        // padded with idle cycles to the common interval.
        let mut cores = Vec::with_capacity(n);
        let mut agg = workloads.first().map_or_else(Default::default, |wl| {
            self.simulate(wl, insts_per_core).stats
        });
        agg.cores.clear();
        agg.duration_s = slowest;
        agg.l2 = Default::default();
        agg.l3 = Default::default();
        agg.noc = Default::default();
        agg.mc = Default::default();
        let per_core_weight = 1.0 / n as f64;
        let mut total_ips = 0.0;
        let mut bw_util: f64 = 0.0;
        for i in 0..n {
            let Some(r) = runs.get(i % runs.len().max(1)) else {
                continue;
            };
            let mut cs = r.stats.core(0);
            cs.idle_cycles += total_cycles.saturating_sub(cs.cycles);
            cs.cycles = total_cycles;
            cores.push(cs);
            // Shared-resource traffic accumulates per core share.
            let share = per_core_weight;
            agg.l2.reads += (r.stats.l2.reads as f64 * share) as u64;
            agg.l2.writes += (r.stats.l2.writes as f64 * share) as u64;
            agg.l2.misses += (r.stats.l2.misses as f64 * share) as u64;
            agg.l2.writebacks += (r.stats.l2.writebacks as f64 * share) as u64;
            agg.noc.flits += (r.stats.noc.flits as f64 * share) as u64;
            agg.mc.bytes_read += (r.stats.mc.bytes_read as f64 * share) as u64;
            agg.mc.bytes_written += (r.stats.mc.bytes_written as f64 * share) as u64;
            total_ips += insts_per_core as f64 / slowest;
            bw_util = bw_util.max(r.mem_bw_utilization);
        }
        agg.l2.interval_s = slowest;
        agg.l3.interval_s = slowest;
        agg.noc.interval_s = slowest;
        agg.mc.interval_s = slowest;
        agg.cores = cores;

        SimResult {
            seconds: slowest,
            ipc_per_core: insts_per_core as f64 / total_cycles.max(1) as f64,
            aggregate_ips: total_ips,
            mem_bw_utilization: bw_util,
            stats: agg,
        }
    }

    #[allow(clippy::cast_sign_loss)]
    fn build_stats(
        &self,
        wl: &WorkloadProfile,
        insts: u64,
        cycles: u64,
        core_r: &crate::cpu::CoreResult,
        seconds: f64,
    ) -> ChipStats {
        let cfg = &self.config;
        let f = |x: f64| x.max(0.0) as u64;
        let ni = insts as f64;
        let is_ooo = cfg.core.instruction_window_size > 0;

        // Out-of-order machines execute wrong-path (speculative) work
        // that is squashed but still burns energy.
        let spec = if is_ooo { 1.25 } else { 1.02 };
        let dcache_accesses = wl.frac_mem() * ni * spec;
        let l1d_misses = core_r.l1d_mpki * ni;
        let l1i_misses = core_r.l1i_mpki * ni;
        let busy_cycles = (cycles as f64 * core_r.thread_busy).min(cycles as f64);

        let core = CoreStats {
            cycles,
            idle_cycles: cycles - f(busy_cycles).min(cycles),
            fetches: insts,
            decodes: insts,
            renames: if is_ooo { insts } else { 0 },
            issues: f(ni * spec),
            commits: insts,
            int_ops: f(wl.frac_int * ni * spec),
            fp_ops: f(wl.frac_fp * ni * spec),
            mul_ops: f(wl.frac_mul * ni),
            loads: f(wl.frac_load * ni * spec),
            stores: f(wl.frac_store * ni),
            branches: f(wl.frac_branch * ni),
            branch_mispredicts: f(wl.frac_branch * wl.mispredict_rate * ni),
            icache_accesses: f(ni / f64::from(cfg.core.fetch_width.max(1))),
            icache_misses: f(l1i_misses),
            dcache_reads: f(wl.frac_load * ni * spec),
            dcache_writes: f(wl.frac_store * ni),
            dcache_misses: f(l1d_misses),
            itlb_accesses: f(ni / f64::from(cfg.core.fetch_width.max(1))),
            dtlb_accesses: f(dcache_accesses),
            window_accesses: if is_ooo { f(2.0 * ni * spec) } else { 0 },
            rob_accesses: if is_ooo { f(2.0 * ni * spec) } else { 0 },
            int_regfile_reads: f(1.7 * ni * spec),
            int_regfile_writes: f(0.7 * ni * spec),
            fp_regfile_reads: f(2.0 * wl.frac_fp * ni),
            fp_regfile_writes: f(wl.frac_fp * ni),
        };

        let n = f64::from(cfg.num_cores);
        let l2_accesses = (l1d_misses + l1i_misses) * n;
        let l2_misses = core_r.l2_mpki * ni * n;
        let to_mem = l2_misses * (1.0 - wl.l2_miss_locality);
        let (l3_reads, l3_misses) = if cfg.l3.is_some() {
            (to_mem, to_mem * 0.4)
        } else {
            (0.0, to_mem)
        };

        ChipStats {
            duration_s: seconds,
            cores: vec![core],
            l2: SharedCacheStats {
                interval_s: seconds,
                reads: f(l2_accesses * 0.75),
                writes: f(l2_accesses * 0.25),
                misses: f(l2_misses),
                writebacks: f(l2_misses * 0.3),
                // Sharing-locality hits imply cross-cluster probes.
                snoops: f(l2_misses * wl.l2_miss_locality),
            },
            l3: SharedCacheStats {
                interval_s: seconds,
                reads: f(l3_reads * 0.8),
                writes: f(l3_reads * 0.2),
                misses: f(l3_misses),
                writebacks: f(l3_misses * 0.3),
                snoops: 0,
            },
            noc: NocStats {
                interval_s: seconds,
                // Request + response packets (~4 flits each) per L2
                // access, plus memory traffic crossing the fabric.
                flits: f((l2_accesses * 2.0 + to_mem * 4.0) * 4.0),
                avg_hops: 0.0,
            },
            mc: MemCtrlStats {
                interval_s: seconds,
                bytes_read: f(l3_misses * 64.0),
                bytes_written: f(l3_misses * 64.0 * 0.3),
            },
            io_utilization: 0.2,
            shared_fpu_ops: if cfg.num_shared_fpus > 0 {
                f(wl.frac_fp * ni * n)
            } else {
                0
            },
            core_wakeups: 0,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn niagara_runs_server_work_well() {
        let cfg = ProcessorConfig::niagara();
        let sys = SystemModel::new(&cfg);
        let r = sys.simulate(&WorkloadProfile::server_transactional(), 10_000_000);
        assert!(r.seconds > 0.0);
        assert!(r.ipc_per_core > 0.1, "ipc {}", r.ipc_per_core);
        assert!(r.stats.l2.reads > 0);
    }

    #[test]
    fn compute_bound_work_is_faster_than_memory_bound() {
        let cfg = ProcessorConfig::alpha21364();
        let sys = SystemModel::new(&cfg);
        let fast = sys.simulate(&WorkloadProfile::compute_bound(), 10_000_000);
        let slow = sys.simulate(&WorkloadProfile::memory_bound(), 10_000_000);
        assert!(fast.seconds < slow.seconds);
    }

    #[test]
    fn bandwidth_throttling_kicks_in_for_many_cores() {
        let core = mcpat_mcore::config::CoreConfig::generic_inorder();
        let few = ProcessorConfig::manycore(
            "few",
            mcpat_tech::TechNode::N22,
            core.clone(),
            4,
            2,
            1 << 21,
        );
        let many =
            ProcessorConfig::manycore("many", mcpat_tech::TechNode::N22, core, 64, 2, 1 << 21);
        let wl = WorkloadProfile::memory_bound();
        let r_few = SystemModel::new(&few).simulate(&wl, 1_000_000);
        let r_many = SystemModel::new(&many).simulate(&wl, 1_000_000);
        // 16× the cores must not get 16× the throughput on a
        // bandwidth-bound workload with the same memory system.
        let speedup = r_many.aggregate_ips / r_few.aggregate_ips;
        assert!(speedup < 12.5, "speedup {speedup}");
        assert!(r_many.mem_bw_utilization > r_few.mem_bw_utilization);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let cfg = ProcessorConfig::niagara2();
        let r = SystemModel::new(&cfg).simulate(&WorkloadProfile::balanced(), 5_000_000);
        let c = &r.stats.cores[0];
        assert_eq!(c.commits, 5_000_000);
        assert!(c.dcache_misses <= c.dcache_reads + c.dcache_writes);
        assert!(c.idle_cycles <= c.cycles);
        assert!(r.stats.l2.misses <= r.stats.l2.reads + r.stats.l2.writes);
    }

    #[test]
    fn phased_simulation_produces_one_result_per_phase() {
        let cfg = ProcessorConfig::niagara2();
        let sys = SystemModel::new(&cfg);
        let phases = [
            (WorkloadProfile::compute_bound(), 2_000_000u64),
            (WorkloadProfile::memory_bound(), 2_000_000),
            (WorkloadProfile::server_transactional(), 2_000_000),
        ];
        let results = sys.simulate_phases(&phases);
        assert_eq!(results.len(), 3);
        // The memory phase takes longest.
        assert!(results[1].seconds > results[0].seconds);
    }

    #[test]
    fn multiprogram_interval_is_the_slowest_workload() {
        let cfg = ProcessorConfig::niagara2();
        let sys = SystemModel::new(&cfg);
        let fast = WorkloadProfile::compute_bound();
        let slow = WorkloadProfile::memory_bound();
        let mix = sys.simulate_multiprogram(&[fast, slow], 5_000_000);
        let slow_alone = sys.simulate(&slow, 5_000_000);
        assert!((mix.seconds - slow_alone.seconds).abs() < slow_alone.seconds * 0.01);
        // Per-core stats are heterogeneous: fast cores idle-wait.
        assert_eq!(mix.stats.cores.len(), 8);
        assert!(mix.stats.cores[0].idle_cycles > 0 || mix.stats.cores[1].idle_cycles > 0);
    }

    #[test]
    fn multiprogram_power_evaluates_per_core() {
        let cfg = ProcessorConfig::niagara2();
        let chip = mcpat::Processor::build(&cfg).unwrap();
        let sys = SystemModel::new(&cfg);
        let mix = sys.simulate_multiprogram(
            &[
                WorkloadProfile::compute_bound(),
                WorkloadProfile::memory_bound(),
            ],
            2_000_000,
        );
        let p = chip.runtime_power(&mix.stats);
        assert!(p.total() > 0.0);
        assert!(p.total() < chip.peak_power().total() * 1.2);
    }

    #[test]
    fn sim_feeds_the_power_model() {
        let cfg = ProcessorConfig::niagara();
        let chip = mcpat::Processor::build(&cfg).unwrap();
        let r =
            SystemModel::new(&cfg).simulate(&WorkloadProfile::server_transactional(), 10_000_000);
        let p = chip.runtime_power(&r.stats);
        let peak = chip.peak_power();
        assert!(p.total() > 0.0);
        assert!(
            p.total() < peak.total() * 1.2,
            "runtime {} vs peak {}",
            p.total(),
            peak.total()
        );
    }
}
