//! A trace-driven, cycle-approximate core simulator.
//!
//! The analytic model in [`crate::cpu`] estimates IPC in closed form;
//! this module provides an independent cross-check: it synthesizes an
//! instruction trace from the same [`WorkloadProfile`] (instruction mix,
//! dependence distances, miss probabilities) and *executes* it on a
//! scoreboard model of the pipeline — in-order or out-of-order with a
//! finite window — producing cycle counts and the same `CoreStats` the
//! power model consumes.
//!
//! Determinism: the generator is seeded, so identical inputs give
//! identical traces and statistics.

use crate::cachesim::miss_rate;
use crate::cpu::CoreTiming;
use crate::workload::WorkloadProfile;
use mcpat_mcore::config::{CoreConfig, MachineType};
use mcpat_mcore::stats::CoreStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Instruction classes in a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Integer ALU operation.
    Int,
    /// Floating-point operation.
    Fp,
    /// Integer multiply/divide.
    Mul,
    /// Memory load (latency sampled from the cache model).
    Load,
    /// Memory store.
    Store,
    /// Branch (may be mispredicted).
    Branch,
}

/// Deepest dependence distance the executor resolves exactly (the
/// completion-ring depth in [`run_trace`]).
pub const MAX_DEP_DISTANCE: u32 = 512;

/// One synthetic instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceOp {
    /// Instruction class.
    pub kind: OpKind,
    /// Distance (in instructions) to the producer this op consumes;
    /// 0 = no register dependence.
    pub dep_distance: u32,
    /// Execution latency in cycles, including sampled memory stalls.
    pub latency: u32,
    /// True if this branch was mispredicted (Branch only).
    pub mispredicted: bool,
}

/// Synthesizes a trace from a workload profile.
#[derive(Debug)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    timing: CoreTiming,
    l1d_mr: f64,
    l2_mr: f64,
    rng: StdRng,
}

impl TraceGenerator {
    /// Creates a generator for a core/workload pair.
    #[must_use]
    pub fn new(cfg: &CoreConfig, profile: &WorkloadProfile, seed: u64) -> TraceGenerator {
        TraceGenerator {
            profile: *profile,
            timing: CoreTiming::default(),
            l1d_mr: miss_rate(cfg.dcache.capacity, profile.data_working_set),
            l2_mr: 0.3, // default shared-cache pressure; override via `with_l2_miss_rate`
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Overrides the L2 miss rate (computed at system level).
    #[must_use]
    pub fn with_l2_miss_rate(mut self, mr: f64) -> TraceGenerator {
        self.l2_mr = mr.clamp(0.0, 1.0);
        self
    }

    /// Samples the next instruction.
    pub fn next_op(&mut self) -> TraceOp {
        let p = &self.profile;
        let r: f64 = self.rng.gen();
        let kind = if r < p.frac_int {
            OpKind::Int
        } else if r < p.frac_int + p.frac_fp {
            OpKind::Fp
        } else if r < p.frac_int + p.frac_fp + p.frac_mul {
            OpKind::Mul
        } else if r < p.frac_int + p.frac_fp + p.frac_mul + p.frac_load {
            OpKind::Load
        } else if r < p.frac_int + p.frac_fp + p.frac_mul + p.frac_load + p.frac_store {
            OpKind::Store
        } else {
            OpKind::Branch
        };

        // Dependence distance ~ geometric with mean = ilp (a short
        // distance means a tight dependence chain).
        let mean = self.profile.ilp.max(1.0);
        let dep_distance = if self.rng.gen::<f64>() < 0.2 {
            0 // independent instruction
        } else {
            // Clamped to the executor's completion-ring depth so a long
            // tail sample cannot alias another instruction's slot.
            (1 + (-(1.0 - self.rng.gen::<f64>()).ln() * mean) as u32).min(MAX_DEP_DISTANCE)
        };

        let latency = match kind {
            OpKind::Int | OpKind::Store => 1,
            OpKind::Branch => 1,
            OpKind::Fp => 4,
            OpKind::Mul => 8,
            OpKind::Load => {
                if self.rng.gen::<f64>() < self.l1d_mr {
                    if self.rng.gen::<f64>() < self.l2_mr {
                        self.timing.mem_cycles as u32
                    } else {
                        self.timing.l2_cycles as u32
                    }
                } else {
                    self.timing.l1_hit_cycles as u32
                }
            }
        };
        let mispredicted =
            kind == OpKind::Branch && self.rng.gen::<f64>() < self.profile.mispredict_rate;
        TraceOp {
            kind,
            dep_distance,
            latency,
            mispredicted,
        }
    }
}

/// The result of executing a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceResult {
    /// Cycles consumed.
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Achieved IPC.
    pub ipc: f64,
}

/// Executes `n_ops` synthetic instructions on a scoreboard model of the
/// configured core and returns (result, stats-for-the-power-model).
///
/// The scoreboard tracks the completion time of the last 512
/// instructions; an instruction issues when its producer has completed,
/// its issue slot is free, and — for out-of-order machines — it lies
/// within `instruction_window_size` of the oldest incomplete
/// instruction. Mispredicted branches flush the front-end for
/// `pipeline_depth × 0.7` cycles.
#[must_use]
pub fn run_trace(
    cfg: &CoreConfig,
    profile: &WorkloadProfile,
    n_ops: u64,
    seed: u64,
) -> (TraceResult, CoreStats) {
    let mut generator = TraceGenerator::new(cfg, profile, seed);
    let width = u64::from(cfg.issue_width.max(1));
    let is_ooo = cfg.machine_type == MachineType::OutOfOrder;
    let window = if is_ooo {
        u64::from(cfg.instruction_window_size.max(1))
    } else {
        1
    };
    let flush_penalty = (f64::from(cfg.pipeline_depth) * 0.7).ceil() as u64;

    const HISTORY: usize = MAX_DEP_DISTANCE as usize;
    /// Completion times of the last `HISTORY` ops, keyed by op index
    /// modulo the ring depth; all access is checked (slots before the
    /// ring wraps read as 0, their initial value).
    struct CompletionRing([u64; HISTORY]);
    impl CompletionRing {
        fn at(&self, op_index: u64) -> u64 {
            self.0
                .get((op_index as usize) % HISTORY)
                .copied()
                .unwrap_or(0)
        }
        fn set(&mut self, op_index: u64, done_at: u64) {
            if let Some(slot) = self.0.get_mut((op_index as usize) % HISTORY) {
                *slot = done_at;
            }
        }
    }
    let mut completion = CompletionRing([0u64; HISTORY]);
    let mut front_end_ready: u64 = 0;
    let mut issued_this_cycle: u64 = 0;
    let mut current_cycle: u64 = 0;
    let mut last_issue: u64 = 0;
    let mut stats = CoreStats::default();

    for i in 0..n_ops {
        let op = generator.next_op();

        // Data dependence.
        let dep_ready = if op.dep_distance == 0 || u64::from(op.dep_distance) > i {
            0
        } else {
            completion.at(i - u64::from(op.dep_distance))
        };
        // Window occupancy (OoO) / program order (in-order).
        let structural_ready = if is_ooo {
            if i >= window {
                completion.at(i - window)
            } else {
                0
            }
        } else {
            last_issue
        };
        let mut ready = dep_ready.max(structural_ready).max(front_end_ready);

        // Issue bandwidth.
        if ready <= current_cycle {
            ready = current_cycle;
        }
        if ready > current_cycle {
            current_cycle = ready;
            issued_this_cycle = 0;
        }
        if issued_this_cycle >= width {
            current_cycle += 1;
            issued_this_cycle = 0;
        }
        let issue_at = current_cycle;
        issued_this_cycle += 1;
        last_issue = issue_at;
        let done_at = issue_at + u64::from(op.latency);
        completion.set(i, done_at);

        if op.mispredicted {
            front_end_ready = done_at + flush_penalty;
        }

        // Event accounting.
        match op.kind {
            OpKind::Int => stats.int_ops += 1,
            OpKind::Fp => stats.fp_ops += 1,
            OpKind::Mul => stats.mul_ops += 1,
            OpKind::Load => {
                stats.loads += 1;
                stats.dcache_reads += 1;
                if op.latency > 2 {
                    stats.dcache_misses += 1;
                }
            }
            OpKind::Store => {
                stats.stores += 1;
                stats.dcache_writes += 1;
            }
            OpKind::Branch => {
                stats.branches += 1;
                if op.mispredicted {
                    stats.branch_mispredicts += 1;
                }
            }
        }
    }

    // Drain: the last completion bounds the cycle count.
    let end = completion.0.iter().copied().max().unwrap_or(current_cycle);
    let cycles = end.max(current_cycle).max(1);

    stats.cycles = cycles;
    stats.fetches = n_ops;
    stats.decodes = n_ops;
    stats.commits = n_ops;
    stats.issues = n_ops;
    stats.renames = if is_ooo { n_ops } else { 0 };
    stats.window_accesses = if is_ooo { 2 * n_ops } else { 0 };
    stats.rob_accesses = if is_ooo { 2 * n_ops } else { 0 };
    stats.icache_accesses = n_ops / u64::from(cfg.fetch_width.max(1));
    stats.itlb_accesses = stats.icache_accesses;
    stats.dtlb_accesses = stats.loads + stats.stores;
    stats.int_regfile_reads = 17 * n_ops / 10;
    stats.int_regfile_writes = 7 * n_ops / 10;
    stats.fp_regfile_reads = 2 * stats.fp_ops;
    stats.fp_regfile_writes = stats.fp_ops;

    let ipc = n_ops as f64 / cycles as f64;
    (
        TraceResult {
            cycles,
            instructions: n_ops,
            ipc,
        },
        stats,
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::cpu::CpuModel;

    #[test]
    fn trace_execution_is_deterministic() {
        let cfg = CoreConfig::generic_ooo();
        let wl = WorkloadProfile::balanced();
        let (a, sa) = run_trace(&cfg, &wl, 50_000, 42);
        let (b, sb) = run_trace(&cfg, &wl, 50_000, 42);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_change_the_trace_slightly() {
        let cfg = CoreConfig::generic_ooo();
        let wl = WorkloadProfile::balanced();
        let (a, _) = run_trace(&cfg, &wl, 50_000, 1);
        let (b, _) = run_trace(&cfg, &wl, 50_000, 2);
        assert_ne!(a.cycles, b.cycles);
        // But the IPC estimates agree closely (same distribution).
        assert!((a.ipc / b.ipc - 1.0).abs() < 0.1);
    }

    #[test]
    fn ipc_never_exceeds_issue_width() {
        for cfg in [CoreConfig::generic_ooo(), CoreConfig::generic_inorder()] {
            let (r, _) = run_trace(&cfg, &WorkloadProfile::compute_bound(), 50_000, 7);
            assert!(r.ipc <= f64::from(cfg.issue_width) + 1e-9, "{}", r.ipc);
            assert!(r.ipc > 0.05);
        }
    }

    #[test]
    fn ooo_beats_inorder_on_the_same_trace_distribution() {
        let wl = WorkloadProfile::balanced();
        let (io, _) = run_trace(&CoreConfig::generic_inorder(), &wl, 100_000, 3);
        let (ooo, _) = run_trace(&CoreConfig::generic_ooo(), &wl, 100_000, 3);
        assert!(ooo.ipc > io.ipc, "ooo {} vs io {}", ooo.ipc, io.ipc);
    }

    #[test]
    fn memory_bound_traces_run_slower() {
        let cfg = CoreConfig::generic_ooo();
        let (fast, _) = run_trace(&cfg, &WorkloadProfile::compute_bound(), 100_000, 5);
        let (slow, _) = run_trace(&cfg, &WorkloadProfile::memory_bound(), 100_000, 5);
        assert!(fast.ipc > 1.5 * slow.ipc);
    }

    #[test]
    fn trace_and_analytic_models_agree_on_ordering() {
        // The two models are independent; they must rank workloads the
        // same way even if absolute IPCs differ.
        let cfg = CoreConfig::generic_ooo();
        let cpu = CpuModel::new(&cfg);
        let timing = CoreTiming::default();
        let workloads = [
            WorkloadProfile::compute_bound(),
            WorkloadProfile::balanced(),
            WorkloadProfile::memory_bound(),
        ];
        let analytic: Vec<f64> = workloads
            .iter()
            .map(|w| cpu.evaluate(w, &timing, 0.3, false, 1).ipc)
            .collect();
        let traced: Vec<f64> = workloads
            .iter()
            .map(|w| run_trace(&cfg, w, 100_000, 11).0.ipc)
            .collect();
        assert!(analytic[0] > analytic[1] && analytic[1] > analytic[2]);
        assert!(traced[0] > traced[1] && traced[1] > traced[2]);
        // Absolute agreement within a factor of 2 for every workload.
        for (a, t) in analytic.iter().zip(&traced) {
            let ratio = a / t;
            assert!(ratio > 0.4 && ratio < 2.5, "analytic {a} vs traced {t}");
        }
    }

    #[test]
    fn trace_stats_feed_the_core_power_model() {
        let cfg = CoreConfig::generic_inorder();
        let tech = mcpat_tech::TechParams::new(
            mcpat_tech::TechNode::N45,
            mcpat_tech::DeviceType::Hp,
            360.0,
        );
        let core = mcpat_mcore::core::CoreModel::build(&tech, &cfg).unwrap();
        let (_, stats) = run_trace(&cfg, &WorkloadProfile::server_transactional(), 50_000, 9);
        let p = core.runtime_power(&stats);
        assert!(p.total() > 0.0 && p.total().is_finite());
    }

    #[test]
    fn mispredictions_cost_cycles() {
        let cfg = CoreConfig::generic_ooo();
        let mut clean = WorkloadProfile::balanced();
        clean.mispredict_rate = 0.0;
        let mut dirty = clean;
        dirty.mispredict_rate = 0.15;
        let (c, _) = run_trace(&cfg, &clean, 100_000, 13);
        let (d, _) = run_trace(&cfg, &dirty, 100_000, 13);
        assert!(
            d.cycles > c.cycles,
            "dirty {} vs clean {}",
            d.cycles,
            c.cycles
        );
    }
}
