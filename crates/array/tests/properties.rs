#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Property-based tests for the array solver: invariants that must hold
//! for any array the optimizer is asked to build.

use mcpat_array::{ArraySpec, OptTarget, Ports};
use mcpat_tech::{DeviceType, TechNode, TechParams};
use proptest::prelude::*;

fn tech() -> TechParams {
    TechParams::new(TechNode::N45, DeviceType::Hp, 360.0)
}

fn any_target() -> impl Strategy<Value = OptTarget> {
    prop::sample::select(vec![
        OptTarget::Delay,
        OptTarget::Energy,
        OptTarget::EnergyDelay,
        OptTarget::EnergyDelaySquared,
        OptTarget::Area,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_solvable_array_has_positive_finite_outputs(
        entries in 4u64..20_000,
        bits in 4u32..600,
        target in any_target(),
    ) {
        let t = tech();
        let a = ArraySpec::table(entries, bits).solve(&t, target).unwrap();
        prop_assert!(a.access_time > 0.0 && a.access_time.is_finite());
        prop_assert!(a.cycle_time > 0.0 && a.cycle_time <= a.access_time * 1.2 + 1e-12);
        prop_assert!(a.read_energy > 0.0 && a.read_energy.is_finite());
        prop_assert!(a.write_energy > 0.0 && a.write_energy.is_finite());
        prop_assert!(a.area > 0.0 && a.area.is_finite());
        prop_assert!(a.leakage.total() > 0.0);
    }

    #[test]
    fn area_is_at_least_the_cell_area(
        entries in 64u64..8_192,
        bits in 8u32..512,
    ) {
        let t = tech();
        let a = ArraySpec::table(entries, bits).solve(&t, OptTarget::Area).unwrap();
        let cell = t.sram_cell().area_m2();
        let min_cells = entries as f64 * f64::from(bits) * cell;
        prop_assert!(a.area >= min_cells, "area {} < cells {}", a.area, min_cells);
    }

    #[test]
    fn bigger_arrays_never_leak_less(
        entries in 64u64..4_096,
        bits in 16u32..256,
    ) {
        let t = tech();
        let small = ArraySpec::table(entries, bits).solve(&t, OptTarget::EnergyDelay).unwrap();
        let big = ArraySpec::table(entries * 4, bits).solve(&t, OptTarget::EnergyDelay).unwrap();
        prop_assert!(big.leakage.total() > small.leakage.total());
    }

    #[test]
    fn delay_target_is_never_slower_than_other_targets(
        entries in 256u64..16_384,
        bits in 32u32..512,
        other in any_target(),
    ) {
        let t = tech();
        let spec = ArraySpec::table(entries, bits);
        let fast = spec.solve(&t, OptTarget::Delay).unwrap();
        let o = spec.solve(&t, other).unwrap();
        prop_assert!(fast.access_time <= o.access_time * (1.0 + 1e-9));
    }

    #[test]
    fn extra_ports_monotonically_grow_area(
        entries in 32u64..512,
        bits in 16u32..128,
        r in 1u32..6,
        w in 1u32..4,
    ) {
        let t = tech();
        let small = ArraySpec::table(entries, bits)
            .with_ports(Ports::reg_file(r, w))
            .solve(&t, OptTarget::Delay)
            .unwrap();
        let big = ArraySpec::table(entries, bits)
            .with_ports(Ports::reg_file(r + 2, w + 1))
            .solve(&t, OptTarget::Delay)
            .unwrap();
        prop_assert!(big.area > small.area);
    }

    #[test]
    fn cam_search_energy_scales_with_entries(
        entries in 16u64..256,
        bits in 32u32..128,
    ) {
        let t = tech();
        let small = ArraySpec::cam(entries, bits, bits / 2).solve(&t, OptTarget::EnergyDelay).unwrap();
        let big = ArraySpec::cam(entries * 4, bits, bits / 2).solve(&t, OptTarget::EnergyDelay).unwrap();
        prop_assert!(big.search_energy > small.search_energy);
    }

    #[test]
    fn mixed_energy_is_bounded_by_read_and_write(
        entries in 64u64..2_048,
        bits in 16u32..256,
        frac in 0.0..1.0f64,
    ) {
        let t = tech();
        let a = ArraySpec::table(entries, bits).solve(&t, OptTarget::EnergyDelay).unwrap();
        let m = a.mixed_energy(frac);
        let lo = a.read_energy.min(a.write_energy);
        let hi = a.read_energy.max(a.write_energy);
        prop_assert!(m >= lo - 1e-18 && m <= hi + 1e-18);
    }

    #[test]
    fn cycle_constraint_is_always_respected_when_met(
        entries in 256u64..8_192,
        bits in 64u32..512,
        ghz in 0.5..2.5f64,
    ) {
        let t = tech();
        let cycle = 1.0 / (ghz * 1e9);
        // Infeasible constraints are an acceptable outcome; when the
        // solver claims success the constraint must hold.
        if let Ok(a) = ArraySpec::table(entries, bits)
            .with_max_cycle_time(cycle)
            .solve(&t, OptTarget::EnergyDelay)
        {
            prop_assert!(a.cycle_time <= cycle + 1e-15);
        }
    }
}
