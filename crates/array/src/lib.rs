//! # mcpat-array — CACTI-style memory array modeling for mcpat-rs
//!
//! Every RAM-like structure in a processor — caches, register files,
//! rename tables, branch predictor tables, queues, directories, TLBs —
//! is modeled in McPAT by the same machinery CACTI uses for caches: the
//! array is partitioned into a grid of subarrays ("mats"), each with its
//! own decoder, wordline drivers, bitlines and sense amplifiers, stitched
//! together by an H-tree; an **optimizer** enumerates partitionings
//! (`Ndwl × Ndbl × Nspd`) and picks the one that meets the timing
//! constraint with the best energy/area.
//!
//! * [`spec`] — what the architect asks for ([`ArraySpec`]);
//! * [`mat`] — the electrical model of a single subarray;
//! * [`htree`] — the routing network joining subarrays to the port;
//! * [`solve`] — the partition optimizer producing a [`SolvedArray`];
//! * [`memo`] — a content-addressed, thread-safe cache of solves;
//! * [`cache`] — tag + data assembly for set-associative caches.
//!
//! ```
//! use mcpat_array::{ArraySpec, OptTarget};
//! use mcpat_tech::{TechNode, DeviceType, TechParams};
//!
//! let tech = TechParams::new(TechNode::N65, DeviceType::Hp, 360.0);
//! // A 32 KB, 64 B-block data array with one read/write port.
//! let spec = ArraySpec::ram(32 * 1024, 64);
//! let solved = spec.solve(&tech, OptTarget::EnergyDelay)?;
//! assert!(solved.access_time < 3e-9);
//! assert!(solved.area > 0.0);
//! # Ok::<(), mcpat_array::ArrayError>(())
//! ```

pub mod cache;
pub mod htree;
pub mod mat;
pub mod memo;
pub mod solve;
pub mod spec;

pub use cache::{CacheArray, CacheSpec};
pub use memo::SolveCacheStats;
pub use solve::{ArrayError, Relaxation, SolvedArray};
pub use spec::{ArrayKind, ArraySpec, OptTarget, Ports};
