//! Content-addressed memoization of array solves.
//!
//! An exploration sweep, a DVFS rebuild loop, or a temperature sweep
//! re-solves the *same physical array* — identical technology corner,
//! identical geometry, identical objective — many times over: every
//! candidate chip in the paper's manycore study shares its L1s, and a
//! repeated `Processor::build` re-solves every array from scratch. The
//! solve is a pure function of `(TechParams, ArraySpec, OptTarget)`, so
//! this module caches it process-wide.
//!
//! **Key canonicalization.** The key must be `Eq + Hash`, but both
//! `TechParams` and `ArraySpec` carry `f64` fields. Every float is keyed
//! by its IEEE-754 bit pattern via [`canon_f64`], with two adjustments
//! so that values that compare equal key equally: `-0.0` maps to `+0.0`,
//! and every NaN maps to one canonical NaN (NaNs never reach the solver
//! in practice — configs are validated — but a total function is
//! cheaper than an unreachable panic). The spec's `name` is deliberately
//! **excluded**: two arrays that differ only in their report label are
//! physically the same array. On a hit the stored result is re-labeled
//! with the requesting spec's name (errors included).
//!
//! **Thread safety.** The map is sharded 16 ways, each shard a
//! `Mutex<HashMap>`, so concurrent array solves from the core/chip
//! build fan-out rarely contend on the same lock. A poisoned shard
//! (impossible unless a panic escapes the panic-free core) is recovered
//! with [`std::sync::PoisonError::into_inner`] rather than propagated.
//! Misses solve *outside* the lock — no lock is held across a
//! (milliseconds-long) solve.
//!
//! **In-flight coalescing.** Concurrent requests for the *same* key —
//! the common case when an exploration batch fans identical candidate
//! chips across the pool — do not race to duplicate the solve: the
//! first requester marks the key *pending* and solves; later
//! requesters park on the shard's condvar and replay the stored result
//! when it lands (counted as hits, sub-counted in
//! [`SolveCacheStats::coalesced`]). The pending mark is cleared by a
//! drop guard, so even a (bug-only) panicking solver wakes the waiters
//! and the next one takes over — never a stuck key.

use crate::solve::{ArrayError, SolvedArray};
use crate::spec::{ArrayKind, ArraySpec, OptTarget};
use mcpat_tech::TechParams;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// Number of independently locked map shards.
const SHARDS: usize = 16;

/// Approximate per-entry byte allowance used to derive each shard's
/// byte cap from its entry cap (key + entry struct + name heap are a
/// few hundred bytes; 1 KiB is a conservative upper bound).
const ENTRY_BYTE_ALLOWANCE: u64 = 1024;

/// Maps an `f64` to canonical key bits: `-0.0` and `+0.0` key equally,
/// and every NaN keys as one canonical NaN.
#[must_use]
pub fn canon_f64(x: f64) -> u64 {
    // lint: allow(L002, exact comparison is the point — ±0.0 must merge to one key; this is the designated canonical-bits seam)
    if x == 0.0 {
        0
    } else if x.is_nan() {
        f64::NAN.to_bits()
    } else {
        x.to_bits()
    }
}

/// The technology half of the cache key: every field of [`TechParams`]
/// that the solver can observe, floats in canonical bit form.
fn tech_words(tech: &TechParams) -> [u64; 16] {
    let d = &tech.device;
    [
        canon_f64(tech.node.feature_m()),
        u64::from(tech.device_type as u8),
        canon_f64(tech.temperature),
        u64::from(tech.projection as u8),
        u64::from(tech.long_channel_leakage),
        canon_f64(d.vdd),
        canon_f64(d.vth),
        canon_f64(d.l_phy),
        canon_f64(d.i_on_n),
        canon_f64(d.i_on_p),
        canon_f64(d.i_off_n_ref),
        canon_f64(d.i_g_n),
        canon_f64(d.c_g),
        canon_f64(d.c_d),
        canon_f64(d.long_channel_leakage_reduction),
        canon_f64(d.t_slope),
    ]
}

/// The full content-addressed cache key. The spec's `name` is excluded
/// on purpose — see the module docs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    tech: [u64; 16],
    entries: u64,
    bits_per_entry: u32,
    access_bits: u32,
    search_bits: u32,
    kind: u8,
    ports: [u32; 4],
    max_cycle: u64,
    has_max_cycle: bool,
    target: u8,
}

impl Key {
    fn new(tech: &TechParams, spec: &ArraySpec, target: OptTarget) -> Key {
        Key {
            tech: tech_words(tech),
            entries: spec.entries,
            bits_per_entry: spec.bits_per_entry,
            access_bits: spec.access_bits,
            search_bits: spec.search_bits,
            kind: match spec.kind {
                ArrayKind::Ram => 0,
                ArrayKind::Cam => 1,
                ArrayKind::Edram => 2,
            },
            ports: [
                spec.ports.rw,
                spec.ports.read,
                spec.ports.write,
                spec.ports.search,
            ],
            max_cycle: spec.max_cycle_time.map_or(0, canon_f64),
            has_max_cycle: spec.max_cycle_time.is_some(),
            target: match target {
                OptTarget::Delay => 0,
                OptTarget::EnergyDelay => 1,
                OptTarget::EnergyDelaySquared => 2,
                OptTarget::Energy => 3,
                OptTarget::Area => 4,
            },
        }
    }

    fn shard(&self) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }
}

/// One shard: the result map, the set of keys currently being solved,
/// and a condvar waking waiters when either changes.
struct Shard {
    state: Mutex<ShardState>,
    cv: Condvar,
}

/// One cached solve plus its CLOCK bookkeeping.
struct Entry {
    value: Result<SolvedArray, ArrayError>,
    /// Approximate resident bytes ([`approx_entry_bytes`]).
    bytes: u64,
    /// CLOCK referenced bit: set on every hit, cleared (one reprieve)
    /// when the eviction hand sweeps past.
    referenced: bool,
}

#[derive(Default)]
struct ShardState {
    map: HashMap<Key, Entry>,
    pending: HashSet<Key>,
    /// CLOCK ring of resident keys; the eviction hand is the front.
    ring: VecDeque<Key>,
    /// Approximate resident bytes across `map`.
    bytes: u64,
}

/// Approximate resident bytes of one cache entry: the key, the entry
/// struct, and the heap strings the stored value owns.
fn approx_entry_bytes(value: &Result<SolvedArray, ArrayError>) -> u64 {
    let heap = match value {
        Ok(s) => s.name.capacity(),
        Err(
            ArrayError::DegenerateSpec { name }
            | ArrayError::NoFeasiblePartition { name, .. }
            | ArrayError::Budget { name, .. },
        ) => name.capacity(),
        Err(ArrayError::Worker { name, detail }) => {
            name.capacity().saturating_add(detail.capacity())
        }
    };
    (std::mem::size_of::<Key>() + std::mem::size_of::<Entry>()) as u64 + heap as u64
}

/// Whether a solve result may be stored. Deterministic outcomes — a
/// successful solve, a degenerate spec, an infeasible partition — are
/// facts about the key and cache fine. Worker panics and budget trips
/// (cancellation, deadline, memory ceiling) are facts about *this
/// call's circumstances*; caching one would poison the key for every
/// future caller, so they are never stored.
fn is_cacheable(value: &Result<SolvedArray, ArrayError>) -> bool {
    match value {
        Ok(_) | Err(ArrayError::DegenerateSpec { .. } | ArrayError::NoFeasiblePartition { .. }) => {
            true
        }
        Err(ArrayError::Worker { .. } | ArrayError::Budget { .. }) => false,
    }
}

/// Evicts entries CLOCK-style until the shard is within its entry and
/// byte caps. Returns the number of evictions.
fn evict_over_cap(st: &mut ShardState, cap_entries: usize) -> u64 {
    if cap_entries == 0 {
        return 0; // Unbounded.
    }
    let cap_bytes = (cap_entries as u64).saturating_mul(ENTRY_BYTE_ALLOWANCE);
    let mut evicted = 0u64;
    // Each resident key is visited at most twice (reprieve, then
    // eviction), so bound the sweep accordingly — a stale ring entry
    // (defensive; should not happen) can then never spin the loop.
    let mut sweeps = st.ring.len().saturating_mul(2).saturating_add(1);
    while (st.map.len() > cap_entries || st.bytes > cap_bytes) && sweeps > 0 {
        sweeps -= 1;
        let Some(key) = st.ring.pop_front() else {
            break;
        };
        match st.map.get_mut(&key) {
            Some(entry) if entry.referenced => {
                entry.referenced = false;
                st.ring.push_back(key);
            }
            Some(_) => {
                if let Some(old) = st.map.remove(&key) {
                    st.bytes = st.bytes.saturating_sub(old.bytes);
                    evicted += 1;
                }
            }
            None => {} // Stale ring slot; drop it.
        }
    }
    evicted
}

/// Heartbeat for waiters parked on an in-flight solve — defense in
/// depth against a missed wake-up (degrades to slow polling, never a
/// hang).
const PENDING_POLL: Duration = Duration::from_millis(100);

fn shards() -> &'static [Shard; SHARDS] {
    static SHARDS_CELL: OnceLock<[Shard; SHARDS]> = OnceLock::new();
    SHARDS_CELL.get_or_init(|| {
        std::array::from_fn(|_| Shard {
            state: Mutex::new(ShardState::default()),
            cv: Condvar::new(),
        })
    })
}

fn lock(shard: &Shard) -> MutexGuard<'_, ShardState> {
    shard.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Clears a key's pending mark (and wakes waiters) on all exit paths
/// of the solving thread, including a hypothetical panic unwinding
/// through `solve_fn` — waiters then re-check and one takes over.
struct PendingGuard<'a> {
    shard: &'a Shard,
    key: Key,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        lock(self.shard).pending.remove(&self.key);
        self.shard.cv.notify_all();
    }
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static COALESCED: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// In-process entry-cap override; `usize::MAX` means "not set" (fall
/// back to the `MCPAT_SOLVE_CACHE_CAP` knob).
static CAP_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Overrides the cache's total entry cap for this process: `Some(0)`
/// disables the cap entirely, `None` restores the
/// `MCPAT_SOLVE_CACHE_CAP` knob (default 4096). Intended for tests and
/// benchmarks forcing eviction pressure without mutating the process
/// environment.
pub fn set_cap(cap: Option<usize>) {
    CAP_OVERRIDE.store(cap.unwrap_or(usize::MAX), Ordering::SeqCst);
}

/// The effective total entry cap (0 = unbounded).
fn total_cap() -> usize {
    let forced = CAP_OVERRIDE.load(Ordering::SeqCst);
    if forced != usize::MAX {
        return forced;
    }
    mcpat_par::knobs::solve_cache_cap()
}

/// The per-shard entry cap derived from [`total_cap`] (0 = unbounded).
fn shard_cap() -> usize {
    let total = total_cap();
    if total == 0 {
        0
    } else {
        total.div_ceil(SHARDS).max(1)
    }
}

/// Cache mode: 0 = auto (on unless `MCPAT_SOLVE_CACHE=0`),
/// 1 = forced on, 2 = forced off.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Forces the solve cache on or off for this process, overriding the
/// `MCPAT_SOLVE_CACHE` environment variable. Intended for benchmarks
/// and tests comparing cold against warm builds.
pub fn set_enabled(on: bool) {
    MODE.store(if on { 1 } else { 2 }, Ordering::SeqCst);
}

/// Restores the default behavior: enabled unless the
/// `MCPAT_SOLVE_CACHE` environment variable is set to `0`.
pub fn set_auto() {
    MODE.store(0, Ordering::SeqCst);
}

fn enabled() -> bool {
    match MODE.load(Ordering::SeqCst) {
        1 => true,
        2 => false,
        _ => mcpat_par::knobs::solve_cache(),
    }
}

/// Drops every cached solve and zeroes the hit/miss counters. Pending
/// marks are left alone — their owning threads are mid-solve and will
/// clear them.
pub fn clear() {
    for shard in shards() {
        let mut st = lock(shard);
        st.map.clear();
        st.ring.clear();
        st.bytes = 0;
    }
    HITS.store(0, Ordering::SeqCst);
    MISSES.store(0, Ordering::SeqCst);
    COALESCED.store(0, Ordering::SeqCst);
    EVICTIONS.store(0, Ordering::SeqCst);
}

/// A snapshot of the solve cache's effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SolveCacheStats {
    /// Solves answered from the cache.
    pub hits: u64,
    /// Solves that ran the optimizer.
    pub misses: u64,
    /// Subset of `hits` that parked on another thread's in-flight
    /// solve of the same key instead of duplicating it.
    pub coalesced: u64,
    /// Distinct (tech, spec, target) keys currently stored.
    pub entries: u64,
    /// Entries evicted by the CLOCK cap since the last [`clear`] —
    /// nonzero means the working set exceeds `MCPAT_SOLVE_CACHE_CAP`.
    pub evictions: u64,
    /// Approximate resident bytes across all shards.
    pub bytes: u64,
}

impl SolveCacheStats {
    /// Hits + misses.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits.saturating_add(self.misses)
    }

    /// Fraction of lookups answered from the cache, in `[0, 1]`.
    /// Well-defined on an untouched cache: zero lookups yield `0.0`,
    /// never NaN — telemetry consumers (the serve daemon's `stats`
    /// envelope, benchline rows) serialize this directly.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// Current process-wide cache statistics.
#[must_use]
pub fn stats() -> SolveCacheStats {
    let (mut entries, mut bytes) = (0u64, 0u64);
    for shard in shards() {
        let st = lock(shard);
        entries += st.map.len() as u64;
        bytes = bytes.saturating_add(st.bytes);
    }
    SolveCacheStats {
        hits: HITS.load(Ordering::SeqCst),
        misses: MISSES.load(Ordering::SeqCst),
        coalesced: COALESCED.load(Ordering::SeqCst),
        entries,
        evictions: EVICTIONS.load(Ordering::SeqCst),
        bytes,
    }
}

/// Re-labels a cached result with the requesting spec's name, so the
/// name-agnostic key never leaks another array's label into reports.
fn relabel(
    mut res: Result<SolvedArray, ArrayError>,
    name: &str,
) -> Result<SolvedArray, ArrayError> {
    match &mut res {
        Ok(solved) => solved.name.replace_range(.., name),
        Err(
            ArrayError::DegenerateSpec { name: n }
            | ArrayError::NoFeasiblePartition { name: n, .. }
            | ArrayError::Worker { name: n, .. }
            | ArrayError::Budget { name: n, .. },
        ) => n.replace_range(.., name),
    }
    res
}

/// Answers a solve from the cache, or runs `solve_fn` and stores its
/// result when it is a fact about the key ([`is_cacheable`]:
/// successful solves and deterministic errors are stored — an
/// infeasible array is infeasible every time it is asked for — while
/// worker panics and budget trips are never stored). Storage is
/// bounded: each shard evicts CLOCK-style beyond its share of the
/// `MCPAT_SOLVE_CACHE_CAP` entry cap (see [`set_cap`]).
///
/// # Errors
///
/// Whatever `solve_fn` returns, possibly replayed from the cache with
/// the name re-labeled.
pub fn lookup_or_solve(
    tech: &TechParams,
    spec: &ArraySpec,
    target: OptTarget,
    solve_fn: impl FnOnce(&TechParams, &ArraySpec, OptTarget) -> Result<SolvedArray, ArrayError>,
) -> Result<SolvedArray, ArrayError> {
    if !enabled() {
        return solve_fn(tech, spec, target);
    }
    let key = Key::new(tech, spec, target);
    let Some(shard) = shards().get(key.shard()) else {
        // Unreachable — shard() reduces mod SHARDS — but a total
        // fallback (solve uncached) is cheaper than a panic path.
        return solve_fn(tech, spec, target);
    };

    // Hit, coalesce onto an in-flight solve, or claim the key.
    let mut waited = false;
    {
        let mut st = lock(shard);
        loop {
            if let Some(entry) = st.map.get_mut(&key) {
                entry.referenced = true;
                let cached = entry.value.clone();
                drop(st);
                HITS.fetch_add(1, Ordering::SeqCst);
                if waited {
                    COALESCED.fetch_add(1, Ordering::SeqCst);
                }
                mcpat_obs::record_solve(true, waited);
                return relabel(cached, &spec.name);
            }
            if st.pending.contains(&key) {
                waited = true;
                let (guard, _) = shard
                    .cv
                    .wait_timeout(st, PENDING_POLL)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
                continue;
            }
            st.pending.insert(key.clone());
            break;
        }
    }

    // This thread owns the solve; the guard clears the pending mark
    // (and wakes waiters) on every exit path.
    let guard = PendingGuard { shard, key };
    MISSES.fetch_add(1, Ordering::SeqCst);
    mcpat_obs::record_solve(false, false);
    let res = solve_fn(tech, spec, target);
    if is_cacheable(&res) {
        let bytes = approx_entry_bytes(&res);
        let evicted = {
            let mut st = lock(shard);
            let prev = st.map.insert(
                guard.key.clone(),
                Entry {
                    value: res.clone(),
                    bytes,
                    referenced: false,
                },
            );
            match prev {
                // Defensive: the pending mark makes a re-insert of a
                // live key unreachable, but keep the books balanced.
                Some(old) => st.bytes = st.bytes.saturating_sub(old.bytes).saturating_add(bytes),
                None => {
                    let key = guard.key.clone();
                    st.ring.push_back(key);
                    st.bytes = st.bytes.saturating_add(bytes);
                }
            }
            evict_over_cap(&mut st, shard_cap())
        };
        if evicted > 0 {
            EVICTIONS.fetch_add(evicted, Ordering::SeqCst);
            mcpat_obs::record_solve_evictions(evicted);
        }
    }
    // A non-cacheable result leaves no entry behind; dropping the
    // guard clears the pending mark and wakes any waiters, and the
    // first of them claims the key and re-solves.
    drop(guard);
    res
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N45, DeviceType::Hp, 360.0)
    }

    #[test]
    fn hit_rate_is_well_defined_without_lookups() {
        // The empty-cache path: a fresh stats snapshot has performed
        // zero lookups, and the ratio must be 0.0, not NaN (it is
        // serialized straight into telemetry JSON).
        let empty = SolveCacheStats::default();
        assert_eq!(empty.lookups(), 0);
        assert_eq!(
            empty.hit_rate().to_bits(),
            0.0f64.to_bits(),
            "zero lookups must yield exactly 0.0"
        );
        assert!(empty.hit_rate().is_finite());
        let mixed = SolveCacheStats {
            hits: 3,
            misses: 1,
            ..SolveCacheStats::default()
        };
        assert!((mixed.hit_rate() - 0.75).abs() < 1e-12);
        let saturating = SolveCacheStats {
            hits: u64::MAX,
            misses: u64::MAX,
            ..SolveCacheStats::default()
        };
        assert!(saturating.hit_rate().is_finite());
        assert!(saturating.hit_rate() <= 1.0);
    }

    #[test]
    fn canon_f64_merges_zero_signs_and_nans() {
        assert_eq!(canon_f64(0.0), canon_f64(-0.0));
        assert_eq!(canon_f64(f64::NAN), canon_f64(-f64::NAN));
        assert_ne!(canon_f64(1.0), canon_f64(2.0));
        assert_eq!(canon_f64(1.5), 1.5f64.to_bits());
    }

    #[test]
    fn key_ignores_name_but_sees_everything_else() {
        let t = tech();
        let a = ArraySpec::ram(64 * 1024, 64).named("icache");
        let b = ArraySpec::ram(64 * 1024, 64).named("dcache");
        assert_eq!(
            Key::new(&t, &a, OptTarget::EnergyDelay),
            Key::new(&t, &b, OptTarget::EnergyDelay)
        );
        assert_ne!(
            Key::new(&t, &a, OptTarget::EnergyDelay),
            Key::new(&t, &a, OptTarget::Delay)
        );
        let c = ArraySpec::ram(64 * 1024, 32);
        assert_ne!(
            Key::new(&t, &a, OptTarget::EnergyDelay),
            Key::new(&t, &c, OptTarget::EnergyDelay)
        );
        let hot = TechParams::new(TechNode::N45, DeviceType::Hp, 380.0);
        assert_ne!(
            Key::new(&t, &a, OptTarget::EnergyDelay),
            Key::new(&hot, &a, OptTarget::EnergyDelay)
        );
        let scaled = t.with_vdd_scale(0.9);
        assert_ne!(
            Key::new(&t, &a, OptTarget::EnergyDelay),
            Key::new(&scaled, &a, OptTarget::EnergyDelay)
        );
    }

    #[test]
    fn unset_cycle_constraint_differs_from_zero() {
        let t = tech();
        let free = ArraySpec::ram(4096, 16);
        let pinned = ArraySpec::ram(4096, 16).with_max_cycle_time(0.0);
        assert_ne!(
            Key::new(&t, &free, OptTarget::EnergyDelay),
            Key::new(&t, &pinned, OptTarget::EnergyDelay)
        );
    }

    /// Serializes tests that flip the process-global cache mode.
    static MODE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn hit_replays_result_with_requesting_name() {
        // Use a geometry no other test solves, so this test owns its key
        // even though the whole test binary shares the process-wide
        // cache; count solver invocations directly instead of relying on
        // the global counters, which other tests bump concurrently.
        let _mode = MODE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_enabled(true);
        let t = tech();
        let calls = std::cell::Cell::new(0u32);
        let run = |name: &str| {
            lookup_or_solve(
                &t,
                &ArraySpec::table(977, 31).named(name),
                OptTarget::Area,
                |t, s, tg| {
                    calls.set(calls.get() + 1);
                    crate::solve::solve_uncached(t, s, tg)
                },
            )
            .unwrap()
        };
        let first = run("first");
        let second = run("second");
        set_auto();
        assert_eq!(calls.get(), 1, "second solve must be answered by the cache");
        assert_eq!(first.name, "first");
        assert_eq!(second.name, "second");
        assert_eq!(first.ndwl, second.ndwl);
        assert_eq!(first.access_time.to_bits(), second.access_time.to_bits());
        assert_eq!(first.area.to_bits(), second.area.to_bits());
    }

    #[test]
    fn errors_are_cached_and_relabeled() {
        let _mode = MODE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_enabled(true);
        let t = tech();
        let degenerate = |name: &str| {
            ArraySpec {
                entries: 0,
                ..ArraySpec::table(1, 13)
            }
            .named(name)
        };
        let e1 = degenerate("a").solve(&t, OptTarget::Delay).unwrap_err();
        let e2 = degenerate("b").solve(&t, OptTarget::Delay).unwrap_err();
        set_auto();
        assert_eq!(e1, ArrayError::DegenerateSpec { name: "a".into() });
        assert_eq!(e2, ArrayError::DegenerateSpec { name: "b".into() });
    }

    #[test]
    fn racing_identical_solves_coalesce_to_one() {
        let _mode = MODE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_enabled(true);
        let t = tech();
        // Unique geometry so this test owns its key process-wide.
        let calls = AtomicU64::new(0);
        let barrier = std::sync::Barrier::new(4);
        std::thread::scope(|s| {
            for i in 0..4 {
                let (t, calls, barrier) = (&t, &calls, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    let r = lookup_or_solve(
                        t,
                        &ArraySpec::table(613, 29).named(format!("racer{i}")),
                        OptTarget::Delay,
                        |t, s2, tg| {
                            calls.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(Duration::from_millis(30));
                            crate::solve::solve_uncached(t, s2, tg)
                        },
                    )
                    .unwrap();
                    assert_eq!(r.name, format!("racer{i}"));
                });
            }
        });
        set_auto();
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "racing identical solves must coalesce onto one solver"
        );
    }

    #[test]
    fn budget_and_worker_errors_are_never_cached() {
        let _mode = MODE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_enabled(true);
        let t = tech();
        let calls = std::cell::Cell::new(0u32);
        // Unique geometry so this test owns its key process-wide.
        let spec = ArraySpec::table(883, 17).named("flaky");
        #[derive(Clone, Copy)]
        enum Mode {
            Worker,
            Budget,
            Real,
        }
        let run = |mode: Mode| {
            lookup_or_solve(&t, &spec, OptTarget::Delay, |t, s, tg| {
                calls.set(calls.get() + 1);
                match mode {
                    Mode::Worker => Err(ArrayError::Worker {
                        name: s.name.clone(),
                        detail: "injected".into(),
                    }),
                    Mode::Budget => Err(ArrayError::Budget {
                        name: s.name.clone(),
                        reason: mcpat_guard::GuardError::Cancelled {
                            progress: mcpat_guard::Progress::default(),
                        },
                    }),
                    Mode::Real => crate::solve::solve_uncached(t, s, tg),
                }
            })
        };
        assert!(matches!(run(Mode::Worker), Err(ArrayError::Worker { .. })));
        assert!(matches!(run(Mode::Budget), Err(ArrayError::Budget { .. })));
        assert!(run(Mode::Real).is_ok(), "clean rerun must solve normally");
        assert!(run(Mode::Real).is_ok());
        set_auto();
        assert_eq!(
            calls.get(),
            3,
            "worker/budget errors must re-solve; only the success is cached"
        );
    }

    #[test]
    fn cap_bounds_entries_and_counts_evictions() {
        let _mode = MODE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_enabled(true);
        set_cap(Some(1));
        let t = tech();
        let before = stats().evictions;
        let calls = std::cell::Cell::new(0u32);
        let run = |i: u64| {
            lookup_or_solve(
                &t,
                // Unique geometries so this test owns its keys.
                &ArraySpec::table(1009 + 2 * i, 19).named("capped"),
                OptTarget::Delay,
                |t, s, tg| {
                    calls.set(calls.get() + 1);
                    crate::solve::solve_uncached(t, s, tg)
                },
            )
            .unwrap()
        };
        for i in 0..40 {
            run(i);
        }
        let after = stats();
        // A total cap of 1 clamps every shard to one resident entry.
        assert!(
            after.entries <= SHARDS as u64,
            "cap must bound residency: {} entries",
            after.entries
        );
        // 40 inserts into <= SHARDS slots force evictions by pigeonhole.
        assert!(
            after.evictions - before >= 40 - SHARDS as u64,
            "expected evictions under pressure, got {}",
            after.evictions - before
        );
        assert!(after.bytes > 0, "resident entries must carry byte weight");
        // The most recent insert is still resident in its shard.
        let solved = calls.get();
        run(39);
        assert_eq!(calls.get(), solved, "latest entry must still hit");
        set_cap(None);
        set_auto();
    }

    #[test]
    fn disabled_cache_always_solves() {
        let _mode = MODE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_enabled(false);
        let t = tech();
        let calls = std::cell::Cell::new(0u32);
        for _ in 0..2 {
            lookup_or_solve(
                &t,
                &ArraySpec::table(499, 23).named("uncached"),
                OptTarget::Delay,
                |t, s, tg| {
                    calls.set(calls.get() + 1);
                    crate::solve::solve_uncached(t, s, tg)
                },
            )
            .unwrap();
        }
        set_auto();
        assert_eq!(calls.get(), 2, "disabled cache must always run the solver");
    }
}
