//! Set-associative cache assembly: tag array + data array (+ banking).
//!
//! McPAT models a cache as separately solved tag and data arrays. Small
//! latency-critical caches read tag and data **in parallel** and discard
//! the losing ways; large caches read the tag first and only then the
//! selected data way (**sequential** access), trading latency for energy.

use crate::solve::{ArrayError, SolvedArray};
use crate::spec::{ArrayKind, ArraySpec, OptTarget, Ports};
use mcpat_circuit::comparator::TagComparator;
use mcpat_circuit::metrics::StaticPower;
use mcpat_tech::TechParams;

/// Tag/data access policy.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum AccessMode {
    /// Probe all ways' tags and data simultaneously (L1 style).
    #[default]
    Parallel,
    /// Probe tags first, then one data way (L2/L3 style).
    Sequential,
}

/// A cache specification.
///
/// # Examples
///
/// ```
/// use mcpat_array::cache::{CacheSpec, AccessMode};
/// use mcpat_array::OptTarget;
/// use mcpat_tech::{TechNode, DeviceType, TechParams};
///
/// let tech = TechParams::new(TechNode::N65, DeviceType::Hp, 360.0);
/// let l1 = CacheSpec::new("l1d", 32 * 1024, 64, 4).solve(&tech, OptTarget::EnergyDelay)?;
/// assert!(l1.hit_latency > 0.0);
/// # Ok::<(), mcpat_array::ArrayError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CacheSpec {
    /// Name for reporting.
    pub name: String,
    /// Total capacity, bytes.
    pub capacity: u64,
    /// Block (line) size, bytes.
    pub block_bytes: u32,
    /// Associativity (ways); must be ≥ 1.
    pub associativity: u32,
    /// Number of independently accessible banks.
    pub banks: u32,
    /// Ports on each bank.
    pub ports: Ports,
    /// Physical address width, bits.
    pub paddr_bits: u32,
    /// Extra state bits stored per tag (valid/dirty/coherence).
    pub state_bits: u32,
    /// Tag/data access policy.
    pub access_mode: AccessMode,
    /// Optional cycle-time constraint for both arrays, s.
    pub max_cycle_time: Option<f64>,
    /// Storage-cell kind of the data array (`Ram` SRAM by default;
    /// `Edram` for dense L3-class arrays, which adds refresh power).
    #[serde(default)]
    pub data_cell: ArrayKind,
}

impl CacheSpec {
    /// Creates a single-banked, single-ported cache spec.
    ///
    /// Zero `block_bytes`/`associativity` are clamped to 1;
    /// [`CacheSpec::validate_into`] reports degenerate or non-dividing
    /// geometries as findings.
    #[must_use]
    pub fn new(name: &str, capacity: u64, block_bytes: u32, associativity: u32) -> CacheSpec {
        let block_bytes = block_bytes.max(1);
        let associativity = associativity.max(1);
        CacheSpec {
            name: name.to_owned(),
            capacity,
            block_bytes,
            associativity,
            banks: 1,
            ports: Ports::single_rw(),
            paddr_bits: 40,
            state_bits: 2,
            access_mode: AccessMode::Parallel,
            max_cycle_time: None,
            data_cell: ArrayKind::Ram,
        }
    }

    /// Switches the data array to eDRAM cells.
    #[must_use]
    pub fn with_edram_data(mut self) -> CacheSpec {
        self.data_cell = ArrayKind::Edram;
        self
    }

    /// Sets the bank count (clamped to ≥ 1).
    #[must_use]
    pub fn with_banks(mut self, banks: u32) -> CacheSpec {
        self.banks = banks.max(1);
        self
    }

    /// Sets the per-bank port configuration.
    #[must_use]
    pub fn with_ports(mut self, ports: Ports) -> CacheSpec {
        self.ports = ports;
        self
    }

    /// Sets the access policy.
    #[must_use]
    pub fn with_access_mode(mut self, mode: AccessMode) -> CacheSpec {
        self.access_mode = mode;
        self
    }

    /// Imposes a cycle-time constraint, s.
    #[must_use]
    pub fn with_max_cycle_time(mut self, t: f64) -> CacheSpec {
        self.max_cycle_time = Some(t);
        self
    }

    /// Reports every geometry problem of this spec into `diags`, with
    /// field paths rooted under `path`.
    pub fn validate_into(&self, path: &str, diags: &mut mcpat_diag::Diagnostics) {
        let at = |field: &str| mcpat_diag::join_path(path, field);
        if self.name.is_empty() {
            diags.warning(at("name"), "unnamed cache; reports will be ambiguous");
        }
        if self.capacity == 0 {
            diags.error(at("capacity"), "cache capacity must be positive");
        }
        if self.block_bytes == 0 {
            diags.error(at("block_bytes"), "block size must be positive");
        } else if !self.block_bytes.is_power_of_two() {
            diags.warning(
                at("block_bytes"),
                format!("block size {} is not a power of two", self.block_bytes),
            );
        }
        if self.associativity == 0 {
            diags.error(at("associativity"), "associativity must be >= 1");
        }
        if self.banks == 0 {
            diags.error(at("banks"), "need at least one bank");
        }
        if self.block_bytes > 0
            && self.associativity > 0
            && self.capacity > 0
            && !self
                .capacity
                .is_multiple_of(u64::from(self.block_bytes) * u64::from(self.associativity))
        {
            diags.error(
                at("capacity"),
                format!(
                    "capacity {} is not a whole number of sets ({} ways x {}-byte blocks)",
                    self.capacity, self.associativity, self.block_bytes
                ),
            );
        }
        if self.ports.total_ram() == 0 {
            diags.error(at("ports"), "cache needs at least one RAM port");
        }
        if self.paddr_bits == 0 || self.paddr_bits > 64 {
            diags.error(
                at("paddr_bits"),
                format!(
                    "physical address width {} must be in 1..=64",
                    self.paddr_bits
                ),
            );
        }
        if self.state_bits > 64 {
            diags.error(
                at("state_bits"),
                format!(
                    "{} state bits per line is outside the modeled range (<= 64)",
                    self.state_bits
                ),
            );
        }
        if self.access_mode == AccessMode::Parallel && self.data_cell == ArrayKind::Edram {
            diags.warning(
                at("access_mode"),
                "parallel tag/data probe reads every way of the slow eDRAM data \
                 array; sequential access is the intended pairing",
            );
        }
        if let Some(t) = self.max_cycle_time {
            diags.require_positive(at("max_cycle_time"), "cycle-time constraint", t);
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u64 {
        // Division-safe even for degenerate field values (which
        // `validate_into` reports): clamp the divisor away from zero.
        let way_bytes = u64::from(self.block_bytes.max(1)) * u64::from(self.associativity.max(1));
        self.capacity / way_bytes
    }

    /// Tag width in bits (address bits minus set and block offsets, plus
    /// state bits). Saturating end to end: corrupted geometry fields
    /// (which `validate_into` reports) must degrade the estimate, not
    /// overflow the arithmetic.
    #[must_use]
    pub fn tag_bits(&self) -> u32 {
        let offset_bits = (f64::from(self.block_bytes)).log2().ceil() as u32;
        let index_bits = (self.sets().max(1) as f64).log2().ceil() as u32;
        self.paddr_bits
            .saturating_sub(offset_bits.saturating_add(index_bits))
            .saturating_add(self.state_bits)
    }

    /// Solves the tag and data arrays and assembles the cache.
    ///
    /// # Errors
    ///
    /// Propagates [`ArrayError`] from either array.
    pub fn solve(&self, tech: &TechParams, target: OptTarget) -> Result<CacheArray, ArrayError> {
        let sets = self.sets().max(1);
        let sets_per_bank = (sets / u64::from(self.banks)).max(1);
        let block_bits = self.block_bytes * 8;

        // Data array: one entry per set holding all ways; parallel reads
        // pull every way, sequential reads one.
        let data_entry_bits = block_bits * self.associativity;
        let data_access_bits = match self.access_mode {
            AccessMode::Parallel => data_entry_bits,
            AccessMode::Sequential => block_bits,
        };
        let mut data_spec = ArraySpec::table(sets_per_bank, data_entry_bits)
            .with_access_bits(data_access_bits)
            .with_ports(self.ports)
            .with_kind(self.data_cell)
            .named(format!("{}-data", self.name));
        if let Some(t) = self.max_cycle_time {
            data_spec = data_spec.with_max_cycle_time(t);
        }

        // Tag array: all ways' tags per set, always read together.
        let tag_entry_bits = self.tag_bits() * self.associativity;
        let mut tag_spec = ArraySpec::table(sets_per_bank, tag_entry_bits)
            .with_ports(self.ports)
            .named(format!("{}-tag", self.name));
        if let Some(t) = self.max_cycle_time {
            tag_spec = tag_spec.with_max_cycle_time(t);
        }

        // The two solves are independent; overlap them when threads are
        // available (data is the big one, tag rides along).
        let (data, tag) = mcpat_par::join2(
            || data_spec.solve(tech, target),
            || tag_spec.solve(tech, target),
        )
        .map_err(|e| ArrayError::Worker {
            name: self.name.clone(),
            detail: e.to_string(),
        })?;
        let (data, tag) = (data?, tag?);

        let cmp = TagComparator::new(tech, self.tag_bits());
        let cmp_m = cmp.metrics();
        let ways = f64::from(self.associativity);

        let (hit_latency, read_hit_energy) = match self.access_mode {
            AccessMode::Parallel => (
                tag.access_time.max(data.access_time) + cmp_m.delay,
                data.read_energy + tag.read_energy + ways * cmp_m.energy_per_op,
            ),
            AccessMode::Sequential => (
                tag.access_time + cmp_m.delay + data.access_time,
                data.read_energy + tag.read_energy + ways * cmp_m.energy_per_op,
            ),
        };
        let write_hit_energy = tag.read_energy + ways * cmp_m.energy_per_op + data.write_energy;
        let miss_energy = tag.read_energy + ways * cmp_m.energy_per_op;
        let fill_energy = tag.write_energy + data.write_energy;

        let banks = f64::from(self.banks);
        let mut leakage = (data.leakage + tag.leakage + cmp_m.leakage.scaled(ways)).scaled(banks);
        // eDRAM cells must be refreshed: every bit rewritten once per
        // retention period. Charged as equivalent static power.
        let refresh_power = if self.data_cell == ArrayKind::Edram {
            let cell = tech.edram_cell();
            let retention = cell.retention_at(tech.temperature).max(1e-6);
            let bits = self.capacity as f64 * 8.0;
            let e_bit = 0.5 * cell.c_storage * tech.device.vdd * tech.device.vdd;
            bits * e_bit / retention
        } else {
            0.0
        };
        leakage.subthreshold += refresh_power;
        let area = (data.area + tag.area + cmp_m.area * ways) * banks;

        let cycle_time = data.cycle_time.max(tag.cycle_time);
        Ok(CacheArray {
            spec: self.clone(),
            data,
            tag,
            hit_latency,
            cycle_time,
            read_hit_energy,
            write_hit_energy,
            miss_energy,
            fill_energy,
            leakage,
            area,
        })
    }
}

/// A solved cache: tag + data arrays and derived per-event energies.
#[derive(Debug, Clone)]
pub struct CacheArray {
    /// The input spec.
    pub spec: CacheSpec,
    /// Solved per-bank data array.
    pub data: SolvedArray,
    /// Solved per-bank tag array.
    pub tag: SolvedArray,
    /// Load-to-use latency of a hit, s.
    pub hit_latency: f64,
    /// Bank cycle time, s.
    pub cycle_time: f64,
    /// Dynamic energy of a read hit, J.
    pub read_hit_energy: f64,
    /// Dynamic energy of a write hit, J.
    pub write_hit_energy: f64,
    /// Dynamic energy of a miss probe (tag check only), J.
    pub miss_energy: f64,
    /// Dynamic energy of a line fill, J.
    pub fill_energy: f64,
    /// Static power of all banks, W.
    pub leakage: StaticPower,
    /// Total area of all banks, m².
    pub area: f64,
}

impl CacheArray {
    /// Warning diagnostics for any of this cache's arrays the solver had
    /// to relax (see [`crate::solve::Relaxation`]).
    #[must_use]
    pub fn relaxation_warnings(&self) -> Vec<mcpat_diag::Diagnostic> {
        [&self.data, &self.tag]
            .into_iter()
            .filter_map(|a| a.relaxation_warning())
            .collect()
    }

    /// Runtime dynamic power given per-second event rates, W.
    #[must_use]
    pub fn dynamic_power(
        &self,
        read_hits_per_s: f64,
        write_hits_per_s: f64,
        misses_per_s: f64,
        fills_per_s: f64,
    ) -> f64 {
        read_hits_per_s * self.read_hit_energy
            + write_hits_per_s * self.write_hit_energy
            + misses_per_s * self.miss_energy
            + fills_per_s * self.fill_energy
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N65, DeviceType::Hp, 360.0)
    }

    #[test]
    fn l1_parallel_cache_solves() {
        let t = tech();
        let c = CacheSpec::new("l1d", 32 * 1024, 64, 4)
            .solve(&t, OptTarget::EnergyDelay)
            .unwrap();
        assert!(c.hit_latency < 3e-9);
        assert!(c.read_hit_energy > c.miss_energy, "miss probes skip data");
    }

    #[test]
    fn sequential_mode_saves_energy_costs_latency() {
        let t = tech();
        let par = CacheSpec::new("l2", 1024 * 1024, 64, 8)
            .with_access_mode(AccessMode::Parallel)
            .solve(&t, OptTarget::EnergyDelay)
            .unwrap();
        let seq = CacheSpec::new("l2", 1024 * 1024, 64, 8)
            .with_access_mode(AccessMode::Sequential)
            .solve(&t, OptTarget::EnergyDelay)
            .unwrap();
        assert!(seq.read_hit_energy < par.read_hit_energy);
        assert!(seq.hit_latency > par.hit_latency);
    }

    #[test]
    fn banking_multiplies_area_and_leakage() {
        let t = tech();
        let one = CacheSpec::new("l2", 2 * 1024 * 1024, 64, 8)
            .solve(&t, OptTarget::EnergyDelay)
            .unwrap();
        let four = CacheSpec::new("l2", 2 * 1024 * 1024, 64, 8)
            .with_banks(4)
            .solve(&t, OptTarget::EnergyDelay)
            .unwrap();
        // Four quarter-size banks: per-access energy drops, total area
        // stays within ~2×, leakage comparable.
        assert!(four.read_hit_energy < one.read_hit_energy);
        assert!(four.area < 2.0 * one.area);
    }

    #[test]
    fn tag_bits_accounting() {
        let c = CacheSpec::new("l1", 32 * 1024, 64, 4);
        // 40 - 6 (offset) - 7 (128 sets) + 2 state = 29
        assert_eq!(c.sets(), 128);
        assert_eq!(c.tag_bits(), 29);
    }

    #[test]
    fn higher_associativity_burns_more_in_parallel_mode() {
        let t = tech();
        let a2 = CacheSpec::new("x", 64 * 1024, 64, 2)
            .solve(&t, OptTarget::EnergyDelay)
            .unwrap();
        let a16 = CacheSpec::new("x", 64 * 1024, 64, 16)
            .solve(&t, OptTarget::EnergyDelay)
            .unwrap();
        assert!(a16.read_hit_energy > a2.read_hit_energy);
    }

    #[test]
    fn edram_l3_is_denser_but_pays_refresh() {
        let t = tech();
        let sram = CacheSpec::new("l3", 8 * 1024 * 1024, 64, 16)
            .with_access_mode(AccessMode::Sequential)
            .solve(&t, OptTarget::EnergyDelay)
            .unwrap();
        let edram = CacheSpec::new("l3", 8 * 1024 * 1024, 64, 16)
            .with_access_mode(AccessMode::Sequential)
            .with_edram_data()
            .solve(&t, OptTarget::EnergyDelay)
            .unwrap();
        assert!(edram.area < sram.area, "eDRAM must be denser");
        // Refresh power exists but is far below SRAM cell leakage.
        assert!(edram.leakage.total() < sram.leakage.total());
        assert!(edram.leakage.total() > 0.0);
    }

    #[test]
    fn dynamic_power_is_linear_in_rates() {
        let t = tech();
        let c = CacheSpec::new("l1", 16 * 1024, 32, 2)
            .solve(&t, OptTarget::EnergyDelay)
            .unwrap();
        let p1 = c.dynamic_power(1e9, 0.0, 0.0, 0.0);
        let p2 = c.dynamic_power(2e9, 0.0, 0.0, 0.0);
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
    }
}
