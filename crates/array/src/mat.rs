//! The electrical model of one subarray ("mat"): cells, wordlines,
//! bitlines, sense amplifiers, row decoder, and — for CAMs — search and
//! match lines.

use mcpat_circuit::decoder::RowDecoder;
use mcpat_circuit::gate::{BufferChain, GateKind, LogicGate};
use mcpat_circuit::metrics::{CircuitMetrics, StaticPower};
use mcpat_tech::{TechParams, WireType};

use crate::spec::{ArrayKind, Ports};

/// Fraction of the supply the bitline swings before the sense amplifier
/// resolves.
const SENSE_SWING_FRACTION: f64 = 0.10;

/// Sense amplifier energy at 90 nm (scales linearly with feature size), J.
const SENSEAMP_ENERGY_90NM: f64 = 6.0e-15;

/// Sense amplifier resolution delay in FO4s.
const SENSEAMP_DELAY_FO4: f64 = 2.0;

/// Layout height of the sense-amp + precharge + write-driver stripe at
/// the bottom of a subarray, in feature sizes.
const COLUMN_PERIPHERY_HEIGHT_F: f64 = 40.0;

/// One subarray of an array organization.
#[derive(Debug, Clone)]
pub struct Mat {
    /// Storage rows in this subarray.
    pub rows: usize,
    /// Storage columns (bits per row) in this subarray.
    pub cols: usize,
    kind: ArrayKind,
    ports: Ports,
    /// Physical cell height including extra port tracks, m.
    pub cell_height: f64,
    /// Physical cell width including extra port tracks, m.
    pub cell_width: f64,
    tech: TechParams,
}

/// Per-operation electrical results for one mat.
#[derive(Debug, Clone, Copy)]
pub struct MatMetrics {
    /// Decode + wordline + bitline + sense critical path for a read, s.
    pub read_delay: f64,
    /// Critical path for a write, s.
    pub write_delay: f64,
    /// Dynamic energy of a read in this mat, J.
    pub read_energy: f64,
    /// Dynamic energy of a write, J.
    pub write_energy: f64,
    /// Dynamic energy of an associative search (CAM only, else 0), J.
    pub search_energy: f64,
    /// Search critical path (CAM only, else 0), s.
    pub search_delay: f64,
    /// Layout area of the mat including its decoder and column
    /// periphery, m².
    pub area: f64,
    /// Mat width, m.
    pub width: f64,
    /// Mat height, m.
    pub height: f64,
    /// Static power of cells + periphery, W.
    pub leakage: StaticPower,
    /// The slowest internal stage, which bounds the random cycle time, s.
    pub max_stage_delay: f64,
}

impl Mat {
    /// Builds the model of a `rows × cols` subarray.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    #[must_use]
    pub fn new(tech: &TechParams, rows: usize, cols: usize, kind: ArrayKind, ports: Ports) -> Mat {
        // Degenerate dimensions are clamped rather than rejected; the
        // spec-level validation pass reports them.
        let rows = rows.max(1);
        let cols = cols.max(1);
        let f = tech.node.feature_m();
        let local_pitch = tech.wire(WireType::Local).pitch;
        let (mut cell_h, mut cell_width) = match kind {
            ArrayKind::Ram => {
                let c = tech.sram_cell();
                (c.height, c.width)
            }
            ArrayKind::Cam => {
                let c = tech.cam_cell();
                (c.height, c.width)
            }
            ArrayKind::Edram => {
                let c = tech.edram_cell();
                (c.height, c.width)
            }
        };
        // Extra RAM ports add one wordline track (height) and a bitline
        // pair (width) each; extra search ports add a matchline track and
        // a searchline pair.
        let extra_ram = ports.total_ram().saturating_sub(1) as f64;
        let extra_search = if kind == ArrayKind::Cam {
            ports.search.saturating_sub(1) as f64
        } else {
            0.0
        };
        cell_h += (extra_ram + extra_search) * local_pitch;
        cell_width += (extra_ram + extra_search) * 2.0 * local_pitch;
        let _ = f;
        Mat {
            rows,
            cols,
            kind,
            ports,
            cell_height: cell_h,
            cell_width,
            tech: *tech,
        }
    }

    /// Wordline capacitance (one row, one port), F.
    fn wordline_cap(&self) -> f64 {
        let wire = self.tech.wire(WireType::Local);
        let per_cell = match self.kind {
            ArrayKind::Ram | ArrayKind::Cam => self
                .tech
                .sram_cell()
                .wordline_cap_contribution(&self.tech.device),
            ArrayKind::Edram => self.tech.gate_cap(self.tech.edram_cell().w_access),
        };
        self.cols as f64 * (per_cell + wire.c_per_m * self.cell_width)
    }

    /// Bitline capacitance (one column, one port), F.
    fn bitline_cap(&self) -> f64 {
        let wire = self.tech.wire(WireType::Local);
        let per_cell = match self.kind {
            ArrayKind::Ram | ArrayKind::Cam => self
                .tech
                .sram_cell()
                .bitline_cap_contribution(&self.tech.device),
            ArrayKind::Edram => self.tech.drain_cap(self.tech.edram_cell().w_access),
        };
        self.rows as f64 * (per_cell + wire.c_per_m * self.cell_height)
            + self.tech.drain_cap(4.0 * self.tech.min_w_nmos()) // precharge devices
    }

    /// Cell read current available to move the bitline, A.
    fn read_current(&self) -> f64 {
        match self.kind {
            ArrayKind::Ram | ArrayKind::Cam => {
                self.tech.sram_cell().read_current(&self.tech.device)
            }
            ArrayKind::Edram => {
                // Charge-sharing read: treat as an equivalent current that
                // dumps the storage cap in ~2 FO4.
                let cell = self.tech.edram_cell();
                cell.c_storage * self.tech.device.vdd / (2.0 * self.tech.fo4())
            }
        }
    }

    /// Per-cell standby leakage, W.
    fn cell_leakage(&self) -> f64 {
        let t = self.tech.temperature;
        // Array cells conventionally use longer channels / higher Vt.
        let lc = self.tech.device.long_channel_leakage_reduction;
        match self.kind {
            ArrayKind::Ram => self.tech.sram_cell().leakage_power(&self.tech.device, t) * lc,
            ArrayKind::Cam => self.tech.cam_cell().leakage_power(&self.tech.device, t) * lc,
            ArrayKind::Edram => 0.05 * self.tech.sram_cell().leakage_power(&self.tech.device, t),
        }
    }

    /// Evaluates the mat.
    ///
    /// `active_cols` — columns whose bitlines actually swing on a read
    /// (after any column-select gating); `written_cols` — columns driven
    /// on a write; `search_bits` — CAM compare width (0 for RAM).
    #[must_use]
    pub fn evaluate(
        &self,
        active_cols: usize,
        written_cols: usize,
        search_bits: u32,
    ) -> MatMetrics {
        let tech = &self.tech;
        let vdd = tech.device.vdd;
        let fo4 = tech.fo4();
        let f = tech.node.feature_m();

        // --- Decoder + wordline -------------------------------------------------
        let c_wl = self.wordline_cap();
        let decoder = RowDecoder::new(tech, self.rows, c_wl);
        let dec = decoder.metrics();

        // --- Bitline read path --------------------------------------------------
        let c_bl = self.bitline_cap();
        let v_swing = (SENSE_SWING_FRACTION * vdd).max(0.05);
        let i_read = self.read_current();
        let t_bl = c_bl * v_swing / i_read;
        let senseamp_delay = SENSEAMP_DELAY_FO4 * fo4;
        let senseamp_energy = SENSEAMP_ENERGY_90NM * tech.node.scale_from_90nm();

        // All active columns swing by v_swing and are precharged back.
        let e_bl_read = active_cols as f64 * c_bl * vdd * v_swing;
        let e_sense = active_cols as f64 * senseamp_energy;
        let e_wl = tech.switch_energy(c_wl) * 2.0; // rise + fall

        let read_delay = dec.delay + t_bl + senseamp_delay;
        let read_energy = dec.energy_per_op + e_wl + e_bl_read + e_sense;

        // --- Write path ---------------------------------------------------------
        // Full-swing differential write on the written columns.
        let e_bl_write = written_cols as f64 * c_bl * vdd * vdd;
        let write_driver = BufferChain::for_load(tech, c_bl);
        let wd = write_driver.metrics();
        let write_delay = dec.delay + wd.delay + 2.0 * fo4;
        let write_energy = dec.energy_per_op + e_wl + e_bl_write + wd.energy_per_op;

        // --- CAM search path ----------------------------------------------------
        let (search_energy, search_delay) = if self.kind == ArrayKind::Cam && search_bits > 0 {
            let cam = tech.cam_cell();
            let wire = tech.wire(WireType::Local);
            let c_sl = self.rows as f64
                * (cam.searchline_cap_contribution(&tech.device) + wire.c_per_m * self.cell_height);
            let c_ml = search_bits as f64 * cam.matchline_cap_contribution(&tech.device)
                + wire.c_per_m * self.cell_width;
            let sl_driver = BufferChain::for_load(tech, c_sl);
            let slm = sl_driver.metrics();
            // Worst case: every matchline was precharged and discharges.
            let e_ml = self.rows as f64 * c_ml * vdd * v_swing;
            let e_sl = search_bits as f64 * (tech.switch_energy(c_sl) + slm.energy_per_op);
            let i_ml = tech.device.i_on_n * cam.w_compare;
            let t_ml = c_ml * v_swing / i_ml;
            let e = e_ml + e_sl + self.rows as f64 * senseamp_energy * 0.25;
            let d = slm.delay + t_ml + senseamp_delay;
            (e, d)
        } else {
            (0.0, 0.0)
        };

        // --- Area ---------------------------------------------------------------
        let cells_width = self.cols as f64 * self.cell_width;
        let cells_h = self.rows as f64 * self.cell_height;
        // Decoder strip on the left: width from its gate area spread over
        // the rows; column periphery strip on the bottom.
        let dec_strip_width = (dec.area / cells_h.max(1e-9)).max(10.0 * f);
        let periph_h = COLUMN_PERIPHERY_HEIGHT_F * f;
        let width = cells_width + dec_strip_width;
        let height = cells_h + periph_h;
        let area = width * height;

        // --- Leakage ------------------------------------------------------------
        let n_cells = (self.rows * self.cols) as f64;
        let cell_leak = n_cells * self.cell_leakage();
        // Sense amps + precharge + write drivers per column.
        let periph_width = 8.0 * tech.min_w_nmos();
        let periph_leak = self.cols as f64
            * (tech.subthreshold_leakage(periph_width, periph_width)
                + tech.gate_leakage(periph_width, periph_width));
        let leakage = StaticPower {
            subthreshold: cell_leak + periph_leak,
            gate: 0.0,
        } + dec.leakage;

        let max_stage_delay = dec
            .delay
            .max(t_bl + senseamp_delay)
            .max(wd.delay)
            .max(search_delay);

        MatMetrics {
            read_delay,
            write_delay,
            read_energy,
            write_energy,
            search_energy,
            search_delay,
            area,
            width,
            height,
            leakage,
            max_stage_delay,
        }
    }

    /// The per-access metrics with all columns active (the common case
    /// used by the solver before column-select gating).
    #[must_use]
    pub fn evaluate_full(&self, search_bits: u32) -> MatMetrics {
        self.evaluate(self.cols, self.cols, search_bits)
    }

    /// Access the port configuration.
    #[must_use]
    pub fn ports(&self) -> Ports {
        self.ports
    }

    /// The spec kind this mat models.
    #[must_use]
    pub fn kind(&self) -> ArrayKind {
        self.kind
    }

    /// Helper exposing the raw metrics as a [`CircuitMetrics`] for reads.
    #[must_use]
    pub fn read_metrics(&self) -> CircuitMetrics {
        let m = self.evaluate_full(0);
        CircuitMetrics {
            area: m.area,
            delay: m.read_delay,
            energy_per_op: m.read_energy,
            leakage: m.leakage,
        }
    }
}

/// Everything in [`Mat::evaluate`] that depends only on the corner, the
/// array kind, the port count, and the (spec-fixed) search width —
/// hoisted out of the partition sweep so it is computed once per solve
/// instead of once per `Ndwl × Ndbl × Nspd` candidate.
///
/// Each cached value is the *same expression* the reference path in
/// [`Mat`] evaluates, computed exactly once, so the factored evaluation
/// in [`MatInvariants::evaluate`] is bit-identical to
/// `Mat::new(..).evaluate(..)` (`soa_matches_reference` below and
/// `tests/perf_identity.rs` enforce this).
#[derive(Debug, Clone, Copy)]
pub struct MatInvariants {
    kind: ArrayKind,
    search_bits: u32,
    cell_height: f64,
    cell_width: f64,
    /// Wordline capacitance per column: cell contribution + wire run.
    wl_per_col: f64,
    /// Bitline capacitance per row: cell contribution + wire run.
    bl_per_row: f64,
    /// Bitline precharge-device capacitance (row-count independent).
    bl_fixed: f64,
    i_read: f64,
    cell_leak: f64,
    v_swing: f64,
    senseamp_delay: f64,
    senseamp_energy: f64,
    periph_leak_per_col: f64,
    feature: f64,
    vdd: f64,
    fo4: f64,
    /// Shared 2-input NAND predecoder prototype (size-invariant).
    predecoder: LogicGate,
    /// CAM matchline capacitance and discharge time (0 for RAM).
    c_ml: f64,
    t_ml: f64,
    tech: TechParams,
}

/// The rows-dependent slice of a mat evaluation, shared by every column
/// partition (`Ndwl`) of the same `rows_per_mat`.
#[derive(Debug, Clone, Copy)]
pub struct MatRowPart {
    rows: usize,
    c_bl: f64,
    t_bl: f64,
    /// Write-driver chain metrics (load is the bitline).
    wd: CircuitMetrics,
    row_gate: LogicGate,
    num_predecoders: u32,
    /// Predecoder metrics at this row count's predecode load.
    pre: CircuitMetrics,
    cells_h: f64,
    search_energy: f64,
    search_delay: f64,
}

/// The columns-dependent slice of a mat evaluation, shared by every row
/// partition (`Ndbl`) of the same `cols_per_mat`.
#[derive(Debug, Clone, Copy)]
pub struct MatColPart {
    cols: usize,
    /// Wordline-driver chain metrics and input load.
    driver: CircuitMetrics,
    driver_input_cap: f64,
    e_wl: f64,
    e_sense: f64,
    cells_width: f64,
    periph_leak: f64,
}

impl MatColPart {
    /// An inert zero geometry for fixed-size table slots that are never
    /// evaluated. Not part of the public API contract.
    #[doc(hidden)]
    #[must_use]
    pub fn placeholder() -> MatColPart {
        MatColPart {
            cols: 0,
            driver: CircuitMetrics::zero(),
            driver_input_cap: 0.0,
            e_wl: 0.0,
            e_sense: 0.0,
            cells_width: 0.0,
            periph_leak: 0.0,
        }
    }
}

impl MatInvariants {
    /// Hoists the per-candidate-invariant parts of a mat evaluation.
    #[must_use]
    pub fn new(
        tech: &TechParams,
        kind: ArrayKind,
        ports: Ports,
        search_bits: u32,
    ) -> MatInvariants {
        let wire = tech.wire(WireType::Local);
        let local_pitch = wire.pitch;
        let (mut cell_h, mut cell_width) = match kind {
            ArrayKind::Ram => {
                let c = tech.sram_cell();
                (c.height, c.width)
            }
            ArrayKind::Cam => {
                let c = tech.cam_cell();
                (c.height, c.width)
            }
            ArrayKind::Edram => {
                let c = tech.edram_cell();
                (c.height, c.width)
            }
        };
        let extra_ram = ports.total_ram().saturating_sub(1) as f64;
        let extra_search = if kind == ArrayKind::Cam {
            ports.search.saturating_sub(1) as f64
        } else {
            0.0
        };
        cell_h += (extra_ram + extra_search) * local_pitch;
        cell_width += (extra_ram + extra_search) * 2.0 * local_pitch;

        let per_cell_wl = match kind {
            ArrayKind::Ram | ArrayKind::Cam => {
                tech.sram_cell().wordline_cap_contribution(&tech.device)
            }
            ArrayKind::Edram => tech.gate_cap(tech.edram_cell().w_access),
        };
        let per_cell_bl = match kind {
            ArrayKind::Ram | ArrayKind::Cam => {
                tech.sram_cell().bitline_cap_contribution(&tech.device)
            }
            ArrayKind::Edram => tech.drain_cap(tech.edram_cell().w_access),
        };
        let vdd = tech.device.vdd;
        let fo4 = tech.fo4();
        let i_read = match kind {
            ArrayKind::Ram | ArrayKind::Cam => tech.sram_cell().read_current(&tech.device),
            ArrayKind::Edram => {
                let cell = tech.edram_cell();
                cell.c_storage * tech.device.vdd / (2.0 * tech.fo4())
            }
        };
        let t = tech.temperature;
        let lc = tech.device.long_channel_leakage_reduction;
        let cell_leak = match kind {
            ArrayKind::Ram => tech.sram_cell().leakage_power(&tech.device, t) * lc,
            ArrayKind::Cam => tech.cam_cell().leakage_power(&tech.device, t) * lc,
            ArrayKind::Edram => 0.05 * tech.sram_cell().leakage_power(&tech.device, t),
        };
        let v_swing = (SENSE_SWING_FRACTION * vdd).max(0.05);
        let periph_width = 8.0 * tech.min_w_nmos();
        let (c_ml, t_ml) = if kind == ArrayKind::Cam && search_bits > 0 {
            let cam = tech.cam_cell();
            let c_ml = search_bits as f64 * cam.matchline_cap_contribution(&tech.device)
                + wire.c_per_m * cell_width;
            let i_ml = tech.device.i_on_n * cam.w_compare;
            (c_ml, c_ml * v_swing / i_ml)
        } else {
            (0.0, 0.0)
        };
        MatInvariants {
            kind,
            search_bits,
            cell_height: cell_h,
            cell_width,
            wl_per_col: per_cell_wl + wire.c_per_m * cell_width,
            bl_per_row: per_cell_bl + wire.c_per_m * cell_h,
            bl_fixed: tech.drain_cap(4.0 * tech.min_w_nmos()),
            i_read,
            cell_leak,
            v_swing,
            senseamp_delay: SENSEAMP_DELAY_FO4 * fo4,
            senseamp_energy: SENSEAMP_ENERGY_90NM * tech.node.scale_from_90nm(),
            periph_leak_per_col: tech.subthreshold_leakage(periph_width, periph_width)
                + tech.gate_leakage(periph_width, periph_width),
            feature: tech.node.feature_m(),
            vdd,
            fo4,
            predecoder: LogicGate::new(tech, GateKind::Nand(2), 2.0),
            c_ml,
            t_ml,
            tech: *tech,
        }
    }

    /// Physical cell height including port tracks, m.
    #[must_use]
    pub fn cell_height(&self) -> f64 {
        self.cell_height
    }

    /// Physical cell width including port tracks, m.
    #[must_use]
    pub fn cell_width(&self) -> f64 {
        self.cell_width
    }

    /// Precomputes the rows-dependent slice for one `rows_per_mat`.
    #[must_use]
    pub fn rows_part(&self, rows: usize) -> MatRowPart {
        let rows = rows.max(1);
        let tech = &self.tech;
        let c_bl = rows as f64 * self.bl_per_row + self.bl_fixed;
        let t_bl = c_bl * self.v_swing / self.i_read;
        let write_driver = BufferChain::for_load(tech, c_bl);
        let wd = write_driver.metrics();

        // Rows-side of the decoder (see `RowDecoder::new`/`metrics`).
        let address_bits = (rows.max(2) as f64).log2().ceil() as u32;
        let num_predecoders = address_bits.div_ceil(2);
        let fan_in = num_predecoders.clamp(2, 4);
        let row_gate = LogicGate::new(tech, GateKind::Nand(fan_in), 1.0);
        let rows_per_line = (rows as f64 / 4.0).max(1.0);
        let predecode_load = rows_per_line * row_gate.input_cap();
        let pre = if num_predecoders == 0 {
            CircuitMetrics::zero()
        } else {
            self.predecoder.metrics(predecode_load)
        };

        let (search_energy, search_delay) = if self.kind == ArrayKind::Cam && self.search_bits > 0 {
            let cam = tech.cam_cell();
            let wire = tech.wire(WireType::Local);
            let c_sl = rows as f64
                * (cam.searchline_cap_contribution(&tech.device) + wire.c_per_m * self.cell_height);
            let sl_driver = BufferChain::for_load(tech, c_sl);
            let slm = sl_driver.metrics();
            let e_ml = rows as f64 * self.c_ml * self.vdd * self.v_swing;
            let e_sl = self.search_bits as f64 * (tech.switch_energy(c_sl) + slm.energy_per_op);
            let e = e_ml + e_sl + rows as f64 * self.senseamp_energy * 0.25;
            let d = slm.delay + self.t_ml + self.senseamp_delay;
            (e, d)
        } else {
            (0.0, 0.0)
        };

        MatRowPart {
            rows,
            c_bl,
            t_bl,
            wd,
            row_gate,
            num_predecoders,
            pre,
            cells_h: rows as f64 * self.cell_height,
            search_energy,
            search_delay,
        }
    }

    /// Precomputes the columns-dependent slice for one `cols_per_mat`.
    #[must_use]
    pub fn cols_part(&self, cols: usize) -> MatColPart {
        let cols = cols.max(1);
        let c_wl = cols as f64 * self.wl_per_col;
        let wordline_driver = BufferChain::for_load(&self.tech, c_wl.max(1e-18));
        MatColPart {
            cols,
            driver: wordline_driver.metrics(),
            driver_input_cap: wordline_driver.input_cap(),
            e_wl: self.tech.switch_energy(c_wl) * 2.0,
            e_sense: cols as f64 * self.senseamp_energy,
            cells_width: cols as f64 * self.cell_width,
            periph_leak: cols as f64 * self.periph_leak_per_col,
        }
    }

    /// Combines the precomputed slices into full mat metrics —
    /// bit-identical to `Mat::new(..).evaluate(cols, written_cols, ..)`.
    #[must_use]
    pub fn evaluate(&self, row: &MatRowPart, col: &MatColPart, written_cols: usize) -> MatMetrics {
        // Decoder combine, mirroring `RowDecoder::metrics`.
        let row_m = row.row_gate.metrics(col.driver_input_cap);
        let num_pre = f64::from(row.num_predecoders);
        let dec_energy =
            row.pre.energy_per_op * num_pre + row_m.energy_per_op + col.driver.energy_per_op;
        let dec_area = row.pre.area * num_pre + (row_m.area + col.driver.area) * row.rows as f64;
        let dec_leak = row.pre.leakage.scaled(num_pre)
            + (row_m.leakage + col.driver.leakage).scaled(row.rows as f64);
        let dec_delay = row.pre.delay + row_m.delay + col.driver.delay;

        let read_delay = dec_delay + row.t_bl + self.senseamp_delay;
        let e_bl_read = col.cols as f64 * row.c_bl * self.vdd * self.v_swing;
        let read_energy = dec_energy + col.e_wl + e_bl_read + col.e_sense;

        let e_bl_write = written_cols as f64 * row.c_bl * self.vdd * self.vdd;
        let write_delay = dec_delay + row.wd.delay + 2.0 * self.fo4;
        let write_energy = dec_energy + col.e_wl + e_bl_write + row.wd.energy_per_op;

        let dec_strip_width = (dec_area / row.cells_h.max(1e-9)).max(10.0 * self.feature);
        let periph_h = COLUMN_PERIPHERY_HEIGHT_F * self.feature;
        let width = col.cells_width + dec_strip_width;
        let height = row.cells_h + periph_h;
        let area = width * height;

        let n_cells = (row.rows * col.cols) as f64;
        let cell_leak = n_cells * self.cell_leak;
        let leakage = StaticPower {
            subthreshold: cell_leak + col.periph_leak,
            gate: 0.0,
        } + dec_leak;

        let max_stage_delay = dec_delay
            .max(row.t_bl + self.senseamp_delay)
            .max(row.wd.delay)
            .max(row.search_delay);

        MatMetrics {
            read_delay,
            write_delay,
            read_energy,
            write_energy,
            search_energy: row.search_energy,
            search_delay: row.search_delay,
            area,
            width,
            height,
            leakage,
            max_stage_delay,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N65, DeviceType::Hp, 360.0)
    }

    fn ram_mat(rows: usize, cols: usize) -> Mat {
        Mat::new(&tech(), rows, cols, ArrayKind::Ram, Ports::single_rw())
    }

    #[test]
    fn taller_mats_have_slower_bitlines() {
        let short = ram_mat(64, 128).evaluate_full(0);
        let tall = ram_mat(1024, 128).evaluate_full(0);
        assert!(tall.read_delay > short.read_delay);
    }

    #[test]
    fn wider_mats_burn_more_read_energy() {
        let narrow = ram_mat(256, 64).evaluate_full(0);
        let wide = ram_mat(256, 512).evaluate_full(0);
        assert!(wide.read_energy > 4.0 * narrow.read_energy);
    }

    #[test]
    fn extra_ports_grow_the_cell() {
        let t = tech();
        let single = Mat::new(&t, 128, 128, ArrayKind::Ram, Ports::single_rw());
        let multi = Mat::new(&t, 128, 128, ArrayKind::Ram, Ports::reg_file(6, 3));
        assert!(multi.cell_height > single.cell_height);
        assert!(multi.cell_width > single.cell_width);
        let a1 = single.evaluate_full(0).area;
        let a9 = multi.evaluate_full(0).area;
        assert!(a9 > 2.0 * a1, "9-port cell should be much bigger");
    }

    #[test]
    fn cam_search_costs_energy() {
        let t = tech();
        let cam = Mat::new(
            &t,
            64,
            64,
            ArrayKind::Cam,
            Ports {
                search: 1,
                ..Ports::single_rw()
            },
        );
        let m = cam.evaluate_full(40);
        assert!(m.search_energy > 0.0);
        assert!(m.search_delay > 0.0);
    }

    #[test]
    fn read_energy_magnitude_is_plausible() {
        // A 256×512 (16 KB) subarray read at 65 nm should be tens of pJ.
        let m = ram_mat(256, 512).evaluate_full(0);
        assert!(
            m.read_energy > 1e-12 && m.read_energy < 1e-9,
            "{:e}",
            m.read_energy
        );
    }

    #[test]
    fn leakage_magnitude_is_plausible() {
        // 32 K cells at 65 nm HP, 360 K: milliwatt-scale.
        let m = ram_mat(256, 128).evaluate_full(0);
        let leak = m.leakage.total();
        assert!(leak > 1e-5 && leak < 1e-1, "{leak:e}");
    }

    #[test]
    fn edram_mat_is_denser_but_leakier_logicwise() {
        let t = tech();
        let sram = Mat::new(&t, 512, 512, ArrayKind::Ram, Ports::single_rw());
        let edram = Mat::new(&t, 512, 512, ArrayKind::Edram, Ports::single_rw());
        assert!(edram.evaluate_full(0).area < sram.evaluate_full(0).area);
        assert!(edram.evaluate_full(0).leakage.total() < sram.evaluate_full(0).leakage.total());
    }

    fn assert_metrics_identical(fast: &MatMetrics, reference: &MatMetrics, what: &str) {
        let pairs = [
            (fast.read_delay, reference.read_delay, "read_delay"),
            (fast.write_delay, reference.write_delay, "write_delay"),
            (fast.read_energy, reference.read_energy, "read_energy"),
            (fast.write_energy, reference.write_energy, "write_energy"),
            (fast.search_energy, reference.search_energy, "search_energy"),
            (fast.search_delay, reference.search_delay, "search_delay"),
            (fast.area, reference.area, "area"),
            (fast.width, reference.width, "width"),
            (fast.height, reference.height, "height"),
            (
                fast.leakage.subthreshold,
                reference.leakage.subthreshold,
                "leakage.subthreshold",
            ),
            (fast.leakage.gate, reference.leakage.gate, "leakage.gate"),
            (
                fast.max_stage_delay,
                reference.max_stage_delay,
                "max_stage_delay",
            ),
        ];
        for (a, b, field) in pairs {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: {field} {a:e} vs {b:e}");
        }
    }

    #[test]
    fn hoisted_invariants_match_reference_bit_for_bit() {
        let cases = [
            (ArrayKind::Ram, Ports::single_rw(), 0u32),
            (ArrayKind::Ram, Ports::reg_file(6, 3), 0),
            (
                ArrayKind::Cam,
                Ports {
                    search: 2,
                    ..Ports::single_rw()
                },
                40,
            ),
            (ArrayKind::Edram, Ports::single_rw(), 0),
        ];
        for node in [TechNode::N90, TechNode::N32] {
            for (kind, ports, sb) in cases {
                let t = TechParams::new(node, DeviceType::Hp, 360.0);
                let inv = MatInvariants::new(&t, kind, ports, sb);
                for rows in [1usize, 64, 256, 1000] {
                    let rp = inv.rows_part(rows);
                    for cols in [1usize, 32, 513] {
                        let cp = inv.cols_part(cols);
                        for written in [1usize, cols] {
                            let fast = inv.evaluate(&rp, &cp, written);
                            let reference =
                                Mat::new(&t, rows, cols, kind, ports).evaluate(cols, written, sb);
                            assert_metrics_identical(
                                &fast,
                                &reference,
                                &format!("{kind:?} {rows}x{cols} w{written} sb{sb} {node:?}"),
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn write_uses_full_swing_and_costs_more_per_column() {
        let mat = ram_mat(256, 256);
        let m = mat.evaluate(256, 256, 0);
        // Full-swing writes dominate the low-swing read bitline energy for
        // equal column counts (sense energy aside).
        assert!(m.write_energy > m.read_energy * 0.8);
    }
}
