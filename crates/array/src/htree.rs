//! The H-tree routing network that carries address and data between the
//! array's port and its subarrays.

use mcpat_circuit::metrics::CircuitMetrics;
use mcpat_circuit::repeater::RepeatedWire;
use mcpat_tech::{TechParams, WireType};

/// Branching overhead: each level of the tree adds stub capacitance
/// beyond the direct path to the target mat.
const BRANCH_FACTOR: f64 = 1.3;

/// An H-tree over an `nx × ny` grid of mats of physical size
/// `mat_width × mat_h` meters, carrying `addr_bits` inbound and `data_bits`
/// bidirectional.
#[derive(Debug, Clone)]
pub struct HTree {
    /// Horizontal mats.
    pub nx: usize,
    /// Vertical mats.
    pub ny: usize,
    /// Path length from the port to the farthest mat, m.
    pub path_length: f64,
    addr_bits: u32,
    data_bits: u32,
    wire: RepeatedWire,
    tech: TechParams,
}

impl HTree {
    /// Builds the tree for a mat grid.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty.
    #[must_use]
    pub fn new(
        tech: &TechParams,
        nx: usize,
        ny: usize,
        mat_width: f64,
        mat_h: f64,
        addr_bits: u32,
        data_bits: u32,
    ) -> HTree {
        let nx = nx.max(1);
        let ny = ny.max(1);
        let path_length = Self::path_length_of(nx, ny, mat_width, mat_h);
        let wire = RepeatedWire::energy_derated(tech, WireType::Intermediate, path_length, 1.10);
        HTree {
            nx,
            ny,
            path_length,
            addr_bits,
            data_bits,
            wire,
            tech: *tech,
        }
    }

    /// Builds the tree around an already-sized trunk wire (the partition
    /// sweep derates it once through `RepeaterInvariants` instead of
    /// re-running the sweep per candidate). `wire` must be the
    /// energy-derated `WireType::Intermediate` wire for this grid's
    /// `path_length` — bit-identity with [`HTree::new`] then follows
    /// because the remaining metrics code is shared.
    #[must_use]
    pub fn from_wire(
        tech: &TechParams,
        nx: usize,
        ny: usize,
        path_length: f64,
        addr_bits: u32,
        data_bits: u32,
        wire: RepeatedWire,
    ) -> HTree {
        HTree {
            nx: nx.max(1),
            ny: ny.max(1),
            path_length,
            addr_bits,
            data_bits,
            wire,
            tech: *tech,
        }
    }

    /// Port-to-farthest-mat trunk length for an `nx × ny` grid, m.
    #[must_use]
    pub fn path_length_of(nx: usize, ny: usize, mat_width: f64, mat_h: f64) -> f64 {
        let total_width = nx.max(1) as f64 * mat_width;
        let total_h = ny.max(1) as f64 * mat_h;
        (total_width / 2.0 + total_h / 2.0).max(1e-6)
    }

    /// One-way latency from port to the farthest mat, s.
    #[must_use]
    pub fn delay(&self) -> f64 {
        self.wire.metrics.delay
    }

    /// Dynamic energy of one access (address in + data out with ~50%
    /// toggle rate, including branch stubs), J.
    #[must_use]
    pub fn access_energy(&self) -> f64 {
        let bits = f64::from(self.addr_bits) + 0.5 * f64::from(self.data_bits);
        bits * self.wire.metrics.energy_per_op * BRANCH_FACTOR
    }

    /// Full metrics for one access through the tree.
    #[must_use]
    pub fn metrics(&self) -> CircuitMetrics {
        let levels = ((self.nx * self.ny) as f64).log2().ceil().max(1.0);
        let bits = f64::from(self.addr_bits + self.data_bits);
        let _ = self.tech;
        CircuitMetrics {
            // Wiring area: tracks × pitch × total length approximation.
            area: self.wire.metrics.area * bits * BRANCH_FACTOR,
            delay: self.delay(),
            energy_per_op: self.access_energy(),
            leakage: self.wire.metrics.leakage.scaled(bits * levels / 2.0),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N45, DeviceType::Hp, 360.0)
    }

    #[test]
    fn bigger_grids_have_longer_paths() {
        let t = tech();
        let small = HTree::new(&t, 2, 2, 200e-6, 200e-6, 16, 128);
        let big = HTree::new(&t, 8, 8, 200e-6, 200e-6, 16, 128);
        assert!(big.path_length > small.path_length);
        assert!(big.delay() > small.delay());
    }

    #[test]
    fn energy_scales_with_data_width() {
        let t = tech();
        let narrow = HTree::new(&t, 4, 4, 100e-6, 100e-6, 16, 64);
        let wide = HTree::new(&t, 4, 4, 100e-6, 100e-6, 16, 512);
        assert!(wide.access_energy() > 3.0 * narrow.access_energy());
    }

    #[test]
    fn single_mat_tree_is_cheap() {
        let t = tech();
        let h = HTree::new(&t, 1, 1, 50e-6, 50e-6, 10, 64);
        assert!(h.delay() < 100e-12);
    }
}
