//! Array specifications: what the architectural layer asks the solver for.

use crate::solve::{ArrayError, SolvedArray};
use mcpat_tech::TechParams;
use std::fmt;

/// Kind of storage array.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum ArrayKind {
    /// Decoded random-access SRAM (caches, register files, tables).
    #[default]
    Ram,
    /// Content-addressable memory with a RAM read/write path
    /// (TLBs, store queues, issue-queue wakeup, reverse RATs).
    Cam,
    /// 1T1C embedded DRAM (large L3-class arrays).
    Edram,
}

impl fmt::Display for ArrayKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArrayKind::Ram => "RAM",
            ArrayKind::Cam => "CAM",
            ArrayKind::Edram => "eDRAM",
        };
        f.write_str(s)
    }
}

/// Port configuration of an array.
///
/// Exclusive read/write ports cost a full wordline + bitline pair each;
/// shared read-write ports cost one each; CAM search ports add
/// search/match lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Ports {
    /// Shared read/write ports.
    pub rw: u32,
    /// Read-only ports.
    pub read: u32,
    /// Write-only ports.
    pub write: u32,
    /// Associative search ports (CAM only).
    pub search: u32,
}

impl Default for Ports {
    fn default() -> Ports {
        Ports {
            rw: 1,
            read: 0,
            write: 0,
            search: 0,
        }
    }
}

impl Ports {
    /// A single shared read/write port (the common cache configuration).
    #[must_use]
    pub fn single_rw() -> Ports {
        Ports::default()
    }

    /// A register-file style port set: `r` read ports and `w` write ports.
    #[must_use]
    pub fn reg_file(r: u32, w: u32) -> Ports {
        Ports {
            rw: 0,
            read: r,
            write: w,
            search: 0,
        }
    }

    /// Total number of RAM-path ports.
    #[must_use]
    pub fn total_ram(&self) -> u32 {
        self.rw.saturating_add(self.read).saturating_add(self.write)
    }

    /// Total ports including search ports.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.total_ram().saturating_add(self.search)
    }
}

/// Objective used by the partition optimizer.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum OptTarget {
    /// Minimize access time.
    Delay,
    /// Minimize energy·delay (the CACTI default).
    #[default]
    EnergyDelay,
    /// Minimize energy·delay², favoring performance.
    EnergyDelaySquared,
    /// Minimize read energy subject to validity.
    Energy,
    /// Minimize area subject to validity.
    Area,
}

/// A request for a storage array.
///
/// Build with [`ArraySpec::ram`], [`ArraySpec::cam`] or
/// [`ArraySpec::table`], refine with the builder methods, then call
/// [`ArraySpec::solve`].
///
/// # Examples
///
/// ```
/// use mcpat_array::{ArraySpec, Ports, OptTarget};
/// use mcpat_tech::{TechNode, DeviceType, TechParams};
///
/// let tech = TechParams::new(TechNode::N45, DeviceType::Hp, 360.0);
/// // A 64-entry, 80-bit physical register file with 6R/3W ports.
/// let spec = ArraySpec::table(64, 80).with_ports(Ports::reg_file(6, 3));
/// let rf = spec.solve(&tech, OptTarget::Delay)?;
/// assert!(rf.read_energy > 0.0);
/// # Ok::<(), mcpat_array::ArrayError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ArraySpec {
    /// Number of addressable entries (rows before reshaping).
    pub entries: u64,
    /// Bits per entry.
    pub bits_per_entry: u32,
    /// Bits read/written per access (≤ `bits_per_entry`;
    /// equal for most structures, smaller for wide cache blocks
    /// read out over several beats).
    pub access_bits: u32,
    /// Bits compared per search (CAM only; tag width).
    pub search_bits: u32,
    /// Kind of array.
    pub kind: ArrayKind,
    /// Port configuration.
    pub ports: Ports,
    /// Optional cycle-time constraint, s. Solutions whose random cycle
    /// time exceeds this are rejected.
    pub max_cycle_time: Option<f64>,
    /// Human-readable name, carried into reports.
    pub name: String,
}

impl ArraySpec {
    /// A RAM array of `size_bytes` organized in `block_bytes` blocks
    /// (one block per entry, full block per access).
    ///
    /// A zero `block_bytes` is clamped to 1 and a non-dividing block
    /// size rounds the entry count up; [`ArraySpec::validate_into`]
    /// reports both as findings.
    #[must_use]
    pub fn ram(size_bytes: u64, block_bytes: u32) -> ArraySpec {
        let block_bytes = block_bytes.max(1);
        let entries = size_bytes.div_ceil(u64::from(block_bytes));
        let bits = block_bytes * 8;
        ArraySpec {
            entries,
            bits_per_entry: bits,
            access_bits: bits,
            search_bits: 0,
            kind: ArrayKind::Ram,
            ports: Ports::single_rw(),
            max_cycle_time: None,
            name: String::from("ram"),
        }
    }

    /// A small table of `entries` × `bits` (register files, predictor
    /// tables, queues).
    #[must_use]
    pub fn table(entries: u64, bits: u32) -> ArraySpec {
        ArraySpec {
            entries,
            bits_per_entry: bits,
            access_bits: bits,
            search_bits: 0,
            kind: ArrayKind::Ram,
            ports: Ports::single_rw(),
            max_cycle_time: None,
            name: String::from("table"),
        }
    }

    /// A CAM of `entries`, each storing `bits` and matching on
    /// `search_bits` of them.
    #[must_use]
    pub fn cam(entries: u64, bits: u32, search_bits: u32) -> ArraySpec {
        ArraySpec {
            entries,
            bits_per_entry: bits,
            access_bits: bits,
            search_bits,
            kind: ArrayKind::Cam,
            ports: Ports {
                search: 1,
                ..Ports::single_rw()
            },
            max_cycle_time: None,
            name: String::from("cam"),
        }
    }

    /// Sets the port configuration.
    #[must_use]
    pub fn with_ports(mut self, ports: Ports) -> ArraySpec {
        self.ports = ports;
        self
    }

    /// Sets the per-access output width in bits.
    #[must_use]
    pub fn with_access_bits(mut self, bits: u32) -> ArraySpec {
        self.access_bits = bits.min(self.bits_per_entry).max(1);
        self
    }

    /// Sets the array kind (e.g. switch a big RAM to eDRAM).
    #[must_use]
    pub fn with_kind(mut self, kind: ArrayKind) -> ArraySpec {
        self.kind = kind;
        self
    }

    /// Imposes a cycle-time constraint in seconds.
    #[must_use]
    pub fn with_max_cycle_time(mut self, t: f64) -> ArraySpec {
        self.max_cycle_time = Some(t);
        self
    }

    /// Names the array for reporting.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> ArraySpec {
        self.name = name.into();
        self
    }

    /// Total storage capacity in bits.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.entries * u64::from(self.bits_per_entry)
    }

    /// Reports every geometry problem of this spec into `diags`, with
    /// field paths rooted under `path`.
    pub fn validate_into(&self, path: &str, diags: &mut mcpat_diag::Diagnostics) {
        let at = |field: &str| mcpat_diag::join_path(path, field);
        if self.name.is_empty() {
            diags.warning(at("name"), "unnamed array; reports will be ambiguous");
        }
        if self.entries == 0 {
            diags.error(at("entries"), "array needs at least one entry");
        }
        if self.bits_per_entry == 0 {
            diags.error(at("bits_per_entry"), "entries must hold at least one bit");
        }
        if self.access_bits == 0 || self.access_bits > self.bits_per_entry {
            diags.error(
                at("access_bits"),
                format!(
                    "access width {} must be in 1..={} (the entry width)",
                    self.access_bits, self.bits_per_entry
                ),
            );
        }
        if self.ports.total_ram() == 0 {
            diags.error(at("ports"), "array needs at least one RAM port");
        }
        if self.kind == ArrayKind::Cam && self.search_bits == 0 {
            diags.error(
                at("search_bits"),
                "CAM arrays must match on at least one bit",
            );
        }
        if self.kind != ArrayKind::Cam && self.ports.search > 0 {
            diags.warning(
                at("ports.search"),
                "search ports are ignored on non-CAM arrays",
            );
        }
        if let Some(t) = self.max_cycle_time {
            diags.require_positive(at("max_cycle_time"), "cycle-time constraint", t);
        }
    }

    /// Runs the partition optimizer for this spec.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError`] if the spec is degenerate (zero entries or
    /// bits) or no partitioning satisfies the constraints.
    pub fn solve(&self, tech: &TechParams, target: OptTarget) -> Result<SolvedArray, ArrayError> {
        crate::solve::solve(tech, self, target)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn ram_constructor_computes_entries() {
        let s = ArraySpec::ram(32 * 1024, 64);
        assert_eq!(s.entries, 512);
        assert_eq!(s.bits_per_entry, 512);
        assert_eq!(s.total_bits(), 32 * 1024 * 8);
    }

    #[test]
    fn ram_clamps_degenerate_geometry_instead_of_panicking() {
        // A non-dividing block size rounds the entry count up…
        let s = ArraySpec::ram(1000, 64);
        assert_eq!(s.entries, 16);
        // …and a zero block size is clamped to one byte per entry.
        let z = ArraySpec::ram(1000, 0);
        assert_eq!(z.entries, 1000);
        assert_eq!(z.bits_per_entry, 8);
    }

    #[test]
    fn access_bits_clamped_to_entry_width() {
        let s = ArraySpec::table(64, 32).with_access_bits(128);
        assert_eq!(s.access_bits, 32);
    }

    #[test]
    fn reg_file_ports_count() {
        let p = Ports::reg_file(6, 3);
        assert_eq!(p.total_ram(), 9);
        assert_eq!(p.total(), 9);
    }

    #[test]
    fn cam_has_search_port_by_default() {
        let s = ArraySpec::cam(64, 64, 40);
        assert_eq!(s.ports.search, 1);
        assert_eq!(s.kind, ArrayKind::Cam);
    }
}
