//! The array partition optimizer.
//!
//! This is McPAT's "engine + internal representation + optimizer" applied
//! to a single storage array: enumerate `Ndwl × Ndbl × Nspd`
//! partitionings, evaluate each candidate's power/area/timing with the
//! [`crate::mat::Mat`] and [`crate::htree::HTree`] models,
//! reject the ones that violate the cycle-time constraint, and return the
//! best under the requested objective.

use crate::htree::HTree;
use crate::mat::{Mat, MatColPart, MatInvariants};
use crate::spec::{ArrayKind, ArraySpec, OptTarget};
use mcpat_circuit::metrics::{CircuitMetrics, StaticPower};
use mcpat_circuit::mux::Multiplexer;
use mcpat_circuit::repeater::RepeaterInvariants;
use mcpat_tech::{TechParams, WireType};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// Area overhead multiplying the raw mat+H-tree area: ECC bits,
/// row/column redundancy, BIST, and intra-array routing that the
/// idealized mat model does not capture.
const ARRAY_AREA_OVERHEAD: f64 = 1.55;

/// Errors from the array solver.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayError {
    /// The spec has zero entries or zero bits per entry.
    DegenerateSpec {
        /// Array name from the spec.
        name: String,
    },
    /// No enumerated partitioning met the constraints.
    NoFeasiblePartition {
        /// Array name from the spec.
        name: String,
        /// The cycle time demanded, if one was set, s.
        required_cycle: Option<f64>,
        /// The best cycle time any candidate achieved, s.
        best_cycle: f64,
    },
    /// A parallel sweep worker failed (a panic inside candidate
    /// evaluation, contained and surfaced as a typed error instead of
    /// unwinding across threads).
    Worker {
        /// Array name from the spec.
        name: String,
        /// Panic payload text from the failed worker.
        detail: String,
    },
    /// A resource budget tripped at one of the solver's cooperative
    /// checkpoints (deadline, cancellation, or memory ceiling — see
    /// `mcpat-guard`). Never cached: a timed-out solve is a fact about
    /// this call, not about the array.
    Budget {
        /// Array name from the spec.
        name: String,
        /// The budget violation, with partial-progress metadata.
        reason: mcpat_guard::GuardError,
    },
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::DegenerateSpec { name } => {
                write!(f, "array `{name}` has zero entries or zero width")
            }
            ArrayError::NoFeasiblePartition {
                name,
                required_cycle,
                best_cycle,
            } => match required_cycle {
                Some(req) => write!(
                    f,
                    "array `{name}`: no partitioning meets the {:.0} ps cycle constraint (best achieved {:.0} ps)",
                    req * 1e12,
                    best_cycle * 1e12
                ),
                None => write!(f, "array `{name}`: no valid partitioning found"),
            },
            ArrayError::Worker { name, detail } => {
                write!(f, "array `{name}`: solver worker failed: {detail}")
            }
            ArrayError::Budget { name, reason } => {
                write!(f, "array `{name}`: solve aborted: {reason}")
            }
        }
    }
}

impl std::error::Error for ArrayError {}

/// How far the solver had to degrade from the requested constraints to
/// find a partitioning (the *relaxation ladder*, tried in this order).
///
/// A solved array carrying a relaxation is still valid — every reported
/// number describes the organization actually chosen — but the original
/// request could not be honored exactly, which callers surface as a
/// warning diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Relaxation {
    /// Rung 1: the standard `Ndwl x Ndbl x Nspd` enumeration bounds
    /// found no candidate; widened bounds (more mats, taller/wider mats)
    /// did.
    WidenedBounds,
    /// Rung 2: the cycle-time constraint was relaxed by `factor`
    /// (1.1, 1.25, 1.5, then 2.0); `achieved` is the cycle time of the
    /// solution, s.
    CycleRelaxed {
        /// Multiplier applied to the requested cycle time.
        factor: f64,
        /// Cycle time actually achieved, s.
        achieved: f64,
    },
    /// Rung 3: the cycle-time constraint had to be dropped entirely;
    /// `achieved` is the unconstrained cycle time, s.
    CycleDropped {
        /// Cycle time actually achieved, s.
        achieved: f64,
    },
}

impl fmt::Display for Relaxation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Relaxation::WidenedBounds => {
                write!(f, "solved only after widening the partition search bounds")
            }
            Relaxation::CycleRelaxed { factor, achieved } => write!(
                f,
                "cycle-time constraint relaxed {factor}x (achieved {:.0} ps)",
                achieved * 1e12
            ),
            Relaxation::CycleDropped { achieved } => write!(
                f,
                "cycle-time constraint dropped (best achievable {:.0} ps)",
                achieved * 1e12
            ),
        }
    }
}

/// A fully solved array: the chosen organization plus its
/// power/area/timing results.
#[derive(Debug, Clone)]
pub struct SolvedArray {
    /// Name echoed from the spec.
    pub name: String,
    /// Horizontal mat count (wordline divisions).
    pub ndwl: usize,
    /// Vertical mat count (bitline divisions).
    pub ndbl: usize,
    /// Entries packed per physical row.
    pub nspd: usize,
    /// Rows per mat.
    pub rows_per_mat: usize,
    /// Columns per mat.
    pub cols_per_mat: usize,
    /// End-to-end access latency, s.
    pub access_time: f64,
    /// Random-access cycle time (pipelined), s.
    pub cycle_time: f64,
    /// Dynamic energy per read, J.
    pub read_energy: f64,
    /// Dynamic energy per write, J.
    pub write_energy: f64,
    /// Dynamic energy per associative search (CAM only, else 0), J.
    pub search_energy: f64,
    /// Total static power, W.
    pub leakage: StaticPower,
    /// Total area including periphery and routing, m².
    pub area: f64,
    /// Layout height, m.
    pub height: f64,
    /// Layout width, m.
    pub width: f64,
    /// How far the solver degraded from the requested constraints
    /// (`None` = solved exactly as asked).
    pub relaxation: Option<Relaxation>,
}

impl SolvedArray {
    /// The warning diagnostic describing this array's relaxation, if the
    /// solver had to degrade. The path is the array's name.
    #[must_use]
    pub fn relaxation_warning(&self) -> Option<mcpat_diag::Diagnostic> {
        self.relaxation
            .map(|r| mcpat_diag::Diagnostic::warning(self.name.clone(), r.to_string()))
    }

    /// Read-path metrics as a uniform [`CircuitMetrics`].
    #[must_use]
    pub fn read_metrics(&self) -> CircuitMetrics {
        CircuitMetrics {
            area: self.area,
            delay: self.access_time,
            energy_per_op: self.read_energy,
            leakage: self.leakage,
        }
    }

    /// Average energy of an access mix with the given read fraction, J.
    #[must_use]
    pub fn mixed_energy(&self, read_fraction: f64) -> f64 {
        let rf = read_fraction.clamp(0.0, 1.0);
        rf * self.read_energy + (1.0 - rf) * self.write_energy
    }

    /// Area efficiency: fraction of the footprint that is storage cells.
    #[must_use]
    pub fn storage_density_bits_per_m2(&self, total_bits: u64) -> f64 {
        total_bits as f64 / self.area
    }
}

fn pow2s_up_to(max: usize) -> impl Iterator<Item = usize> {
    (0..).map(|i| 1usize << i).take_while(move |&v| v <= max)
}

/// Scalar results of one candidate evaluation: everything a
/// [`SolvedArray`] carries except the (heap-allocated) name and the
/// relaxation tag, as plain `Copy` data. The enumeration loop works
/// entirely in these so the innermost sweep allocates nothing; the
/// winning candidate is materialized into a `SolvedArray` exactly once
/// per threshold, after the sweep.
#[derive(Clone, Copy, Default)]
struct RawEval {
    rows_per_mat: usize,
    cols_per_mat: usize,
    access_time: f64,
    cycle_time: f64,
    read_energy: f64,
    write_energy: f64,
    search_energy: f64,
    leakage: StaticPower,
    area: f64,
    height: f64,
    width: f64,
}

/// A scored candidate organization.
#[derive(Clone, Copy)]
struct Scored {
    score: f64,
    nspd: usize,
    ndwl: usize,
    ndbl: usize,
    eval: RawEval,
}

/// The solver's total order: lower score wins, and exact score ties
/// break on lexicographic `(nspd, ndwl, ndbl)`. Being a total order
/// over distinct organizations makes the best-reduce independent of
/// enumeration order and of how candidates are grouped across threads,
/// so serial and parallel sweeps pick bit-identical winners.
fn better(a: &Scored, b: &Scored) -> bool {
    a.score < b.score || (a.score == b.score && (a.nspd, a.ndwl, a.ndbl) < (b.nspd, b.ndwl, b.ndbl))
}

/// Folds a candidate into the per-threshold best slots.
fn reduce_into(best: &mut [Option<Scored>], thresholds: &[Option<f64>], cand: Scored) {
    for (slot, limit) in best.iter_mut().zip(thresholds) {
        let ok_cycle = limit.is_none_or(|req| cand.eval.cycle_time <= req);
        if ok_cycle && slot.is_none_or(|b| better(&cand, &b)) {
            *slot = Some(cand);
        }
    }
}

/// Builds the full `SolvedArray` for a winning candidate — the only
/// place the solver allocates per solve.
fn materialize(spec: &ArraySpec, s: Scored, relaxation: Option<Relaxation>) -> SolvedArray {
    SolvedArray {
        name: spec.name.clone(),
        ndwl: s.ndwl,
        ndbl: s.ndbl,
        nspd: s.nspd,
        rows_per_mat: s.eval.rows_per_mat,
        cols_per_mat: s.eval.cols_per_mat,
        access_time: s.eval.access_time,
        cycle_time: s.eval.cycle_time,
        read_energy: s.eval.read_energy,
        write_energy: s.eval.write_energy,
        search_energy: s.eval.search_energy,
        leakage: s.eval.leakage,
        area: s.eval.area,
        height: s.eval.height,
        width: s.eval.width,
        relaxation,
    }
}

/// One `(nspd, ndbl)` cell of the outer enumeration space — the unit of
/// work distributed across sweep threads. `geom_idx` points at the
/// hoisted per-`nspd` column-geometry table.
#[derive(Clone, Copy)]
struct OuterCell {
    nspd: usize,
    ndbl: usize,
    rows_per_mat: usize,
    geom_idx: usize,
}

/// The `Ndwl × Ndbl × Nspd` enumeration limits for one search pass.
struct SearchBounds {
    nspd_options: &'static [usize],
    max_ndwl: usize,
    max_ndbl: usize,
    max_rows_per_mat: usize,
    max_cols_per_mat: usize,
}

/// Standard bounds — the original McPAT/CACTI-style search space.
const NORMAL_RAM: SearchBounds = SearchBounds {
    nspd_options: &[1, 2, 4, 8],
    max_ndwl: 64,
    max_ndbl: 128,
    max_rows_per_mat: 1024,
    max_cols_per_mat: 2048,
};

/// Widened bounds for relaxation rung 1: more mats and taller/wider
/// mats, so extreme geometries (very deep, very narrow, …) still map.
const WIDE_RAM: SearchBounds = SearchBounds {
    nspd_options: &[1, 2, 4, 8, 16],
    max_ndwl: 256,
    max_ndbl: 512,
    max_rows_per_mat: 4096,
    max_cols_per_mat: 8192,
};

// CAMs keep all search bits on one matchline: no horizontal split, no
// row packing.
const NORMAL_CAM: SearchBounds = SearchBounds {
    nspd_options: &[1],
    max_ndwl: 1,
    ..NORMAL_RAM
};
const WIDE_CAM: SearchBounds = SearchBounds {
    nspd_options: &[1],
    max_ndwl: 1,
    ..WIDE_RAM
};

/// Cycle-constraint multipliers tried, in order, on relaxation rung 2.
const CYCLE_RELAX_FACTORS: [f64; 4] = [1.1, 1.25, 1.5, 2.0];

/// Arrays at least this large (total storage bits) fan the outer
/// `nspd × ndbl` sweep out across threads. Smaller arrays solve in well
/// under a millisecond and are typically already being solved
/// concurrently by the core/chip build fan-out, where an extra level of
/// nested spawning only oversubscribes the machine.
const PAR_SWEEP_MIN_BITS: u64 = 1 << 20;

/// Maps a tripped budget to the solver's typed error for `spec`.
fn budget_check(spec: &ArraySpec) -> Result<(), ArrayError> {
    mcpat_guard::check().map_err(|reason| ArrayError::Budget {
        name: spec.name.clone(),
        reason,
    })
}

/// Upper bound on `ndwl` lanes per outer cell: `max_ndwl` never exceeds
/// 256 in any bounds table (9 powers of two), so 16 fixed lanes hold
/// every sweep without heap storage.
const MAX_LANES: usize = 16;

/// Upper bound on simultaneously tracked cycle thresholds: the strict
/// rung uses 1, the widened ladder pass uses
/// `1 + CYCLE_RELAX_FACTORS + 1 = 6`.
const MAX_THRESHOLDS: usize = 6;

/// Upper bound on `nspd` options per bounds table (the widest is 5).
const MAX_NSPD: usize = 8;

/// Test-only escape hatch: routes [`solve_uncached`] through the
/// retained [`reference`] implementation so differential tests can
/// compare whole chip builds against the unhoisted path. Process-global
/// (not thread-local) so parallel build fan-outs inherit it.
static REFERENCE_MODE: AtomicBool = AtomicBool::new(false);

/// Selects the reference (unhoisted) solver for subsequent solves.
/// For differential tests only; solves remain bit-identical either way.
#[doc(hidden)]
pub fn set_reference_mode(enabled: bool) {
    REFERENCE_MODE.store(enabled, Ordering::SeqCst);
}

/// Everything about one solve that does not depend on the candidate
/// partitioning: the hoisted mat and repeater invariant tables plus a
/// few spec-derived scalars. Built once per solve and shared by both
/// enumeration passes (and, read-only, by all sweep threads).
struct SolveInvariants {
    tech: TechParams,
    mat: MatInvariants,
    rep: RepeaterInvariants,
    addr_bits: u32,
    /// `spec.access_bits.max(1)`, the mux/rollup form.
    access_bits: usize,
    /// Raw `spec.access_bits`, the H-tree data payload.
    data_bits: u32,
    is_cam: bool,
}

impl SolveInvariants {
    fn new(tech: &TechParams, spec: &ArraySpec) -> SolveInvariants {
        SolveInvariants {
            tech: *tech,
            mat: MatInvariants::new(tech, spec.kind, spec.ports, spec.search_bits),
            rep: RepeaterInvariants::new(tech, WireType::Intermediate),
            addr_bits: (spec.entries.max(2) as f64).log2().ceil() as u32,
            access_bits: spec.access_bits.max(1) as usize,
            data_bits: spec.access_bits,
            is_cam: spec.kind == ArrayKind::Cam,
        }
    }
}

/// Column geometry for one `(nspd, ndwl)` pair, shared by every `ndbl`
/// cell at that `nspd`: the wordline-side mat invariants plus the fully
/// hoisted output-mux metrics. `valid` preserves the reference sweep's
/// cadence — a column-filtered geometry still consumes one budget
/// checkpoint but never evaluates or counts as a guard candidate.
#[derive(Clone, Copy)]
struct ColGeom {
    ndwl: usize,
    valid: bool,
    cols_per_mat: usize,
    written_per_mat: usize,
    col: MatColPart,
    mux_delay: f64,
    /// `access_bits × mux energy`, the read-path rollup term.
    mux_read_energy: f64,
    /// Mux leakage already scaled by `access_bits`.
    mux_leak: StaticPower,
}

impl ColGeom {
    fn placeholder() -> ColGeom {
        ColGeom {
            ndwl: 0,
            valid: false,
            cols_per_mat: 0,
            written_per_mat: 0,
            col: MatColPart::placeholder(),
            mux_delay: 0.0,
            mux_read_energy: 0.0,
            mux_leak: StaticPower::default(),
        }
    }
}

/// The per-`nspd` table of column geometries, one per candidate `ndwl`.
#[derive(Clone, Copy)]
struct GeomSet {
    n: usize,
    geoms: [ColGeom; MAX_LANES],
}

impl GeomSet {
    fn empty() -> GeomSet {
        GeomSet {
            n: 0,
            geoms: [ColGeom::placeholder(); MAX_LANES],
        }
    }

    fn build(inv: &SolveInvariants, bounds: &SearchBounds, cols_total: usize) -> GeomSet {
        let mut set = GeomSet::empty();
        // `max_ndwl` ≤ 256 in every bounds table, so the pow2 ladder
        // fits in MAX_LANES with headroom; `take` is a formality.
        for ndwl in pow2s_up_to(bounds.max_ndwl.min(cols_total)).take(MAX_LANES) {
            let cols_per_mat = cols_total.div_ceil(ndwl);
            let written_per_mat = inv.access_bits.div_ceil(ndwl).min(cols_per_mat);
            let mux_degree = ((cols_per_mat * ndwl) / inv.access_bits.max(1)).max(1);
            let mux_m = Multiplexer::new(&inv.tech, mux_degree, 20e-15).metrics();
            let Some(slot) = set.geoms.get_mut(set.n) else {
                break;
            };
            *slot = ColGeom {
                ndwl,
                valid: cols_per_mat <= bounds.max_cols_per_mat,
                cols_per_mat,
                written_per_mat,
                col: inv.mat.cols_part(cols_per_mat),
                mux_delay: mux_m.delay,
                mux_read_energy: inv.access_bits as f64 * mux_m.energy_per_op,
                mux_leak: mux_m.leakage.scaled(inv.access_bits as f64),
            };
            set.n += 1;
        }
        set
    }

    fn as_slice(&self) -> &[ColGeom] {
        self.geoms.get(..self.n).unwrap_or(&[])
    }
}

/// Fixed-size per-threshold best slots (at most [`MAX_THRESHOLDS`] are
/// ever live), replacing the reference path's per-cell `Vec`.
#[derive(Clone, Copy)]
struct BestSet {
    slots: [Option<Scored>; MAX_THRESHOLDS],
}

impl BestSet {
    fn empty() -> BestSet {
        BestSet {
            slots: [None; MAX_THRESHOLDS],
        }
    }
}

/// Struct-of-arrays candidate lanes for one outer cell's `ndwl` sweep.
/// The evaluation loop fills plain `f64` lanes; scoring then runs as a
/// single branch-light pass per objective (the `match` sits outside the
/// loop); the ordered reduce reads the lanes back in `ndwl` order so the
/// tie-break sequence is identical to the reference sweep's.
struct CellLanes {
    n: usize,
    ndwl: [usize; MAX_LANES],
    access: [f64; MAX_LANES],
    cycle: [f64; MAX_LANES],
    energy: [f64; MAX_LANES],
    area: [f64; MAX_LANES],
    score: [f64; MAX_LANES],
    evals: [RawEval; MAX_LANES],
}

impl CellLanes {
    fn new() -> CellLanes {
        CellLanes {
            n: 0,
            ndwl: [0; MAX_LANES],
            access: [0.0; MAX_LANES],
            cycle: [0.0; MAX_LANES],
            energy: [0.0; MAX_LANES],
            area: [0.0; MAX_LANES],
            score: [0.0; MAX_LANES],
            evals: [RawEval::default(); MAX_LANES],
        }
    }

    fn push(&mut self, ndwl: usize, eval: RawEval) {
        let k = self.n;
        let (Some(nd), Some(ac), Some(cy), Some(en), Some(ar), Some(ev)) = (
            self.ndwl.get_mut(k),
            self.access.get_mut(k),
            self.cycle.get_mut(k),
            self.energy.get_mut(k),
            self.area.get_mut(k),
            self.evals.get_mut(k),
        ) else {
            return;
        };
        *nd = ndwl;
        *ac = eval.access_time;
        *cy = eval.cycle_time;
        *en = eval.read_energy;
        *ar = eval.area;
        *ev = eval;
        self.n = k + 1;
    }

    /// One pass over the lanes per objective; no per-candidate dispatch.
    fn score(&mut self, target: OptTarget) {
        let n = self.n;
        match target {
            OptTarget::Delay => {
                for (s, a) in self.score.iter_mut().zip(&self.access).take(n) {
                    *s = *a;
                }
            }
            OptTarget::Energy => {
                for (s, e) in self.score.iter_mut().zip(&self.energy).take(n) {
                    *s = *e;
                }
            }
            OptTarget::EnergyDelay => {
                let lanes = self.score.iter_mut().zip(&self.energy).zip(&self.access);
                for ((s, e), a) in lanes.take(n) {
                    *s = *e * *a;
                }
            }
            OptTarget::EnergyDelaySquared => {
                let lanes = self.score.iter_mut().zip(&self.energy).zip(&self.access);
                for ((s, e), a) in lanes.take(n) {
                    *s = *e * *a * *a;
                }
            }
            OptTarget::Area => {
                for (s, ar) in self.score.iter_mut().zip(&self.area).take(n) {
                    *s = *ar;
                }
            }
        }
    }
}

/// The hoisted-path candidate evaluation: the same arithmetic as
/// [`evaluate_raw`] — identical operations in identical order, so the
/// results match bit for bit (see the differential tests) — with every
/// candidate-invariant term read from the tables instead of recomputed.
fn evaluate_fast(
    inv: &SolveInvariants,
    row: &crate::mat::MatRowPart,
    geom: &ColGeom,
    cell: &OuterCell,
) -> RawEval {
    let m = inv.mat.evaluate(row, &geom.col, geom.written_per_mat);
    let ndwl = geom.ndwl;
    let ndbl = cell.ndbl;

    let path_length = HTree::path_length_of(ndwl, ndbl, m.width, m.height);
    let wire = inv.rep.energy_derated(path_length, 1.10);
    let ht = HTree::from_wire(
        &inv.tech,
        ndwl,
        ndbl,
        path_length,
        inv.addr_bits,
        inv.data_bits,
        wire,
    )
    .metrics();

    let n_mats = (ndwl * ndbl) as f64;
    let active = ndwl as f64;

    let read_energy = active * m.read_energy + geom.mux_read_energy + ht.energy_per_op;
    let write_energy = active * m.write_energy + ht.energy_per_op;
    let search_energy = if inv.is_cam {
        ndbl as f64 * m.search_energy + ht.energy_per_op
    } else {
        0.0
    };

    let access_time = 2.0 * ht.delay + m.read_delay + geom.mux_delay;
    let cycle_time = 1.2 * m.max_stage_delay.max(ht.delay);

    let area = (n_mats * m.area + ht.area) * ARRAY_AREA_OVERHEAD;
    // Aspect ratio from the mat grid; the overhead (ECC/redundancy/
    // routing) is apportioned as extra height so width × height = area.
    let width = ndwl as f64 * m.width;
    let height = area / width.max(1e-9);

    let leakage = m.leakage.scaled(n_mats) + ht.leakage + geom.mux_leak;

    RawEval {
        rows_per_mat: cell.rows_per_mat,
        cols_per_mat: geom.cols_per_mat,
        access_time,
        cycle_time,
        read_energy,
        write_energy,
        search_energy,
        leakage,
        area,
        height,
        width,
    }
}

/// Sweeps `ndwl` for one outer cell, reducing into per-threshold bests.
///
/// This is the structure-of-arrays fast path: row invariants are hoisted
/// once per cell, candidates fill `f64` lanes, scoring runs branch-light
/// over the lanes, and the ordered reduce replays the reference
/// tie-break sequence exactly. Budget checkpoints and guard candidate
/// counts keep the reference cadence — one budget check per `ndwl`
/// (including column-filtered ones), one guard candidate per evaluated
/// geometry — so a deadline or cancellation still stops the sweep
/// between candidates, never mid-evaluation.
fn sweep_cell(
    inv: &SolveInvariants,
    spec: &ArraySpec,
    target: OptTarget,
    thresholds: &[Option<f64>],
    cell: &OuterCell,
    geoms: &[ColGeom],
) -> Result<(BestSet, f64), ArrayError> {
    // lint: hot
    let row = inv.mat.rows_part(cell.rows_per_mat);
    let mut lanes = CellLanes::new();
    for geom in geoms {
        budget_check(spec)?;
        if !geom.valid {
            continue;
        }
        lanes.push(geom.ndwl, evaluate_fast(inv, &row, geom, cell));
        mcpat_guard::note_candidate();
    }
    lanes.score(target);

    let mut best = BestSet::empty();
    let mut best_cycle_seen = f64::INFINITY;
    let scored = lanes
        .score
        .iter()
        .zip(&lanes.ndwl)
        .zip(&lanes.cycle)
        .zip(&lanes.evals);
    for (((&score, &ndwl), &cycle), eval) in scored.take(lanes.n) {
        // A non-finite score mirrors `evaluate_raw` returning `None`.
        if !score.is_finite() {
            continue;
        }
        best_cycle_seen = best_cycle_seen.min(cycle);
        reduce_into(
            &mut best.slots,
            thresholds,
            Scored {
                score,
                nspd: cell.nspd,
                ndwl,
                ndbl: cell.ndbl,
                eval: *eval,
            },
        );
    }
    // lint: hot end
    Ok((best, best_cycle_seen))
}

/// One enumeration pass. For each cycle-time threshold in `thresholds`
/// (`None` = unconstrained) the best-scoring candidate meeting it is
/// tracked independently, so the whole relaxation ladder needs at most
/// two passes. Also returns the fastest cycle time seen by any
/// candidate.
///
/// Column geometry depends only on `(nspd, ndwl)`, so one table per
/// `nspd` is hoisted out of the per-cell sweep here. Large arrays
/// distribute the outer `(nspd, ndbl)` cells across threads; because
/// [`better`] is a total order, merging the per-cell bests in any
/// grouping yields the same winner, so the parallel sweep is
/// bit-identical to the serial one.
fn enumerate(
    inv: &SolveInvariants,
    spec: &ArraySpec,
    target: OptTarget,
    bounds: &SearchBounds,
    thresholds: &[Option<f64>],
) -> Result<(BestSet, f64), ArrayError> {
    let entries = spec.entries as usize;
    let bits = spec.bits_per_entry as usize;

    // All enumeration scratch (the cell list and the per-nspd geometry
    // tables) lives in the thread's bump arena: the first solve on a
    // thread grows it, every later solve reuses the same chunks and
    // allocates nothing.
    mcpat_arena::scratch(|scratch| {
        let geom_sets = scratch.alloc_fill(MAX_NSPD, GeomSet::empty());
        let mut n_sets = 0usize;
        let max_cells = bounds
            .nspd_options
            .len()
            .saturating_mul(pow2s_up_to(bounds.max_ndbl).count());
        let cells_buf = scratch.alloc_fill(
            max_cells,
            OuterCell {
                nspd: 0,
                ndbl: 0,
                rows_per_mat: 0,
                geom_idx: 0,
            },
        );
        let mut n_cells = 0usize;
        for &nspd in bounds.nspd_options {
            budget_check(spec)?;
            if nspd > entries {
                continue;
            }
            let rows_total = entries.div_ceil(nspd);
            let cols_total = bits * nspd;
            let Some(slot) = geom_sets.get_mut(n_sets) else {
                break;
            };
            *slot = GeomSet::build(inv, bounds, cols_total);
            let geom_idx = n_sets;
            n_sets += 1;
            for ndbl in pow2s_up_to(bounds.max_ndbl.min(rows_total)) {
                let rows_per_mat = rows_total.div_ceil(ndbl);
                if rows_per_mat > bounds.max_rows_per_mat {
                    continue;
                }
                let Some(cell) = cells_buf.get_mut(n_cells) else {
                    break;
                };
                *cell = OuterCell {
                    nspd,
                    ndbl,
                    rows_per_mat,
                    geom_idx,
                };
                n_cells += 1;
            }
        }
        let cells: &[OuterCell] = cells_buf.get(..n_cells).unwrap_or(&[]);
        let geom_sets: &[GeomSet] = geom_sets;

        let min_parallel = if spec.total_bits() >= PAR_SWEEP_MIN_BITS {
            2
        } else {
            usize::MAX
        };
        budget_check(spec)?;
        let sweeps = mcpat_par::par_map(cells, min_parallel, |_, cell| {
            let geoms = geom_sets
                .get(cell.geom_idx)
                .map(GeomSet::as_slice)
                .unwrap_or(&[]);
            sweep_cell(inv, spec, target, thresholds, cell, geoms)
        })
        .map_err(|e| ArrayError::Worker {
            name: spec.name.clone(),
            detail: e.to_string(),
        })?;

        let mut best = BestSet::empty();
        let mut best_cycle_seen = f64::INFINITY;
        // Surface per-cell budget trips in input order so the winning
        // error is deterministic regardless of how the sweep was
        // scheduled.
        for sweep in sweeps {
            let (partial, cycle) = sweep?;
            best_cycle_seen = best_cycle_seen.min(cycle);
            for (slot, cand) in best.slots.iter_mut().zip(partial.slots) {
                if let Some(c) = cand {
                    if slot.is_none_or(|b| better(&c, &b)) {
                        *slot = Some(c);
                    }
                }
            }
        }
        Ok((best, best_cycle_seen))
    })
}

/// Runs the optimizer. Prefer [`ArraySpec::solve`].
///
/// If the standard search space yields no feasible partitioning, the
/// solver degrades gracefully along a relaxation ladder instead of
/// failing outright:
///
/// 1. widen the `Ndwl × Ndbl × Nspd` enumeration bounds
///    ([`Relaxation::WidenedBounds`]);
/// 2. relax the cycle-time constraint by ×1.1, ×1.25, ×1.5, then ×2.0
///    ([`Relaxation::CycleRelaxed`]);
/// 3. drop the cycle-time constraint entirely
///    ([`Relaxation::CycleDropped`]).
///
/// A solution found on any rung records it in
/// [`SolvedArray::relaxation`], which callers surface as a warning.
///
/// # Errors
///
/// See [`ArrayError`]. [`ArrayError::NoFeasiblePartition`] is returned
/// only when even the fully relaxed search finds no evaluable candidate.
pub fn solve(
    tech: &TechParams,
    spec: &ArraySpec,
    target: OptTarget,
) -> Result<SolvedArray, ArrayError> {
    crate::memo::lookup_or_solve(tech, spec, target, solve_uncached)
}

/// The actual optimizer behind [`solve`], bypassing the content-
/// addressed cache in [`crate::memo`].
pub(crate) fn solve_uncached(
    tech: &TechParams,
    spec: &ArraySpec,
    target: OptTarget,
) -> Result<SolvedArray, ArrayError> {
    if REFERENCE_MODE.load(Ordering::Relaxed) {
        return reference::solve_reference(tech, spec, target);
    }
    if spec.entries == 0 || spec.bits_per_entry == 0 {
        return Err(ArrayError::DegenerateSpec {
            name: spec.name.clone(),
        });
    }

    let is_cam = spec.kind == ArrayKind::Cam;
    let normal = if is_cam { &NORMAL_CAM } else { &NORMAL_RAM };
    let wide = if is_cam { &WIDE_CAM } else { &WIDE_RAM };
    let req = spec.max_cycle_time;
    let inv = SolveInvariants::new(tech, spec);

    // Rung 0: the standard search, exactly as requested.
    budget_check(spec)?;
    let (strict, cycle_strict) = enumerate(&inv, spec, target, normal, &[req])?;
    if let Some(c) = strict.slots.first().copied().flatten() {
        return Ok(materialize(spec, c, None));
    }

    // Relaxation ladder: one widened pass tracks every rung at once.
    let [f1, f2, f3, f4] = CYCLE_RELAX_FACTORS;
    let (tvals, tlen): ([Option<f64>; MAX_THRESHOLDS], usize) = match req {
        Some(r) => (
            [
                Some(r),
                Some(r * f1),
                Some(r * f2),
                Some(r * f3),
                Some(r * f4),
                None,
            ],
            MAX_THRESHOLDS,
        ),
        None => ([None; MAX_THRESHOLDS], 1),
    };
    let thresholds = tvals.get(..tlen).unwrap_or(&[]);
    budget_check(spec)?;
    let (rungs, cycle_wide) = enumerate(&inv, spec, target, wide, thresholds)?;
    let last = tlen - 1;
    for (i, cand) in rungs.slots.iter().take(tlen).enumerate() {
        let Some(c) = *cand else { continue };
        let achieved = c.eval.cycle_time;
        let relaxation = Some(match (i, req) {
            (0, _) | (_, None) => Relaxation::WidenedBounds,
            (_, Some(_)) if i == last => Relaxation::CycleDropped { achieved },
            (_, Some(_)) => Relaxation::CycleRelaxed {
                // Rung i > 0 here, so i-1 indexes the factor that built
                // thresholds[i]; a mismatch falls back to the last rung.
                factor: i
                    .checked_sub(1)
                    .and_then(|j| CYCLE_RELAX_FACTORS.get(j))
                    .copied()
                    .unwrap_or(f64::INFINITY),
                achieved,
            },
        });
        return Ok(materialize(spec, c, relaxation));
    }

    let best_cycle = cycle_strict.min(cycle_wide);
    Err(ArrayError::NoFeasiblePartition {
        name: spec.name.clone(),
        required_cycle: req,
        best_cycle: if best_cycle.is_finite() {
            best_cycle
        } else {
            0.0
        },
    })
}

/// Evaluates one explicit `(Ndwl, Ndbl, Nspd)` partitioning without
/// searching — used by the optimizer-ablation experiment to quantify
/// what the search buys.
///
/// # Errors
///
/// Returns [`ArrayError::NoFeasiblePartition`] if the partitioning is
/// not evaluable (e.g. produces degenerate mats).
pub fn solve_fixed(
    tech: &TechParams,
    spec: &ArraySpec,
    ndwl: usize,
    ndbl: usize,
    nspd: usize,
) -> Result<SolvedArray, ArrayError> {
    if spec.entries == 0 || spec.bits_per_entry == 0 {
        return Err(ArrayError::DegenerateSpec {
            name: spec.name.clone(),
        });
    }
    let entries = spec.entries as usize;
    let bits = spec.bits_per_entry as usize;
    let rows_total = entries.div_ceil(nspd.max(1));
    let cols_total = bits * nspd.max(1);
    let rows_per_mat = rows_total.div_ceil(ndbl.max(1));
    let cols_per_mat = cols_total.div_ceil(ndwl.max(1));
    evaluate_raw(
        tech,
        spec,
        nspd.max(1),
        ndwl.max(1),
        ndbl.max(1),
        rows_per_mat,
        cols_per_mat,
        spec.access_bits.max(1) as usize,
        OptTarget::EnergyDelay,
    )
    .map(|c| materialize(spec, c, None))
    .ok_or(ArrayError::NoFeasiblePartition {
        name: spec.name.clone(),
        required_cycle: None,
        best_cycle: 0.0,
    })
}

#[allow(clippy::too_many_arguments)]
fn evaluate_raw(
    tech: &TechParams,
    spec: &ArraySpec,
    nspd: usize,
    ndwl: usize,
    ndbl: usize,
    rows_per_mat: usize,
    cols_per_mat: usize,
    access_bits: usize,
    target: OptTarget,
) -> Option<Scored> {
    let mat = Mat::new(tech, rows_per_mat, cols_per_mat, spec.kind, spec.ports);
    let written_per_mat = access_bits.div_ceil(ndwl).min(cols_per_mat);
    let m = mat.evaluate(cols_per_mat, written_per_mat, spec.search_bits);

    // Column select: the active stripe produces cols_total bits, the port
    // wants access_bits.
    let cols_total = cols_per_mat * ndwl;
    let mux_degree = (cols_total / access_bits.max(1)).max(1);
    let mux = Multiplexer::new(tech, mux_degree, 20e-15);
    let mux_m = mux.metrics();

    let addr_bits = (spec.entries.max(2) as f64).log2().ceil() as u32;
    let htree = HTree::new(
        tech,
        ndwl,
        ndbl,
        m.width,
        m.height,
        addr_bits,
        spec.access_bits,
    );
    let ht = htree.metrics();

    let n_mats = (ndwl * ndbl) as f64;
    let active = ndwl as f64;

    let read_energy =
        active * m.read_energy + access_bits as f64 * mux_m.energy_per_op + ht.energy_per_op;
    let write_energy = active * m.write_energy + ht.energy_per_op;
    let search_energy = if spec.kind == ArrayKind::Cam {
        ndbl as f64 * m.search_energy + ht.energy_per_op
    } else {
        0.0
    };

    let access_time = 2.0 * ht.delay + m.read_delay + mux_m.delay;
    let cycle_time = 1.2 * m.max_stage_delay.max(ht.delay);

    let area = (n_mats * m.area + ht.area) * ARRAY_AREA_OVERHEAD;
    // Aspect ratio from the mat grid; the overhead (ECC/redundancy/
    // routing) is apportioned as extra height so width × height = area.
    let width = ndwl as f64 * m.width;
    let height = area / width.max(1e-9);

    let leakage = m.leakage.scaled(n_mats) + ht.leakage + mux_m.leakage.scaled(access_bits as f64);

    let score = match target {
        OptTarget::Delay => access_time,
        OptTarget::Energy => read_energy,
        OptTarget::EnergyDelay => read_energy * access_time,
        OptTarget::EnergyDelaySquared => read_energy * access_time * access_time,
        OptTarget::Area => area,
    };
    if !score.is_finite() {
        return None;
    }
    Some(Scored {
        score,
        nspd,
        ndwl,
        ndbl,
        eval: RawEval {
            rows_per_mat,
            cols_per_mat,
            access_time,
            cycle_time,
            read_energy,
            write_energy,
            search_energy,
            leakage,
            area,
            height,
            width,
        },
    })
}

/// The reference (unhoisted) solver, retained verbatim from before the
/// invariant-hoisting fast path: every candidate is rebuilt from scratch
/// through [`Mat`], [`Multiplexer`], and [`HTree::new`] via
/// [`evaluate_raw`]. The differential tests sweep both implementations
/// across specs, objectives, and relaxation rungs and require equal
/// bits; [`set_reference_mode`] routes whole chip builds through here
/// for the same comparison. Not part of the public API contract.
#[doc(hidden)]
pub mod reference {
    use super::{
        better, budget_check, evaluate_raw, materialize, pow2s_up_to, reduce_into, ArrayError,
        ArrayKind, ArraySpec, OptTarget, Relaxation, Scored, SearchBounds, SolvedArray, TechParams,
        CYCLE_RELAX_FACTORS, NORMAL_CAM, NORMAL_RAM, PAR_SWEEP_MIN_BITS, WIDE_CAM, WIDE_RAM,
    };

    #[derive(Clone, Copy)]
    struct SweepCell {
        nspd: usize,
        ndbl: usize,
        rows_per_mat: usize,
        cols_total: usize,
    }

    fn sweep_cell(
        tech: &TechParams,
        spec: &ArraySpec,
        target: OptTarget,
        bounds: &SearchBounds,
        thresholds: &[Option<f64>],
        cell: &SweepCell,
    ) -> Result<(Vec<Option<Scored>>, f64), ArrayError> {
        let access_bits = spec.access_bits.max(1) as usize;
        let mut best: Vec<Option<Scored>> = vec![None; thresholds.len()];
        let mut best_cycle_seen = f64::INFINITY;
        for ndwl in pow2s_up_to(bounds.max_ndwl.min(cell.cols_total)) {
            budget_check(spec)?;
            let cols_per_mat = cell.cols_total.div_ceil(ndwl);
            if cols_per_mat > bounds.max_cols_per_mat {
                continue;
            }
            if let Some(cand) = evaluate_raw(
                tech,
                spec,
                cell.nspd,
                ndwl,
                cell.ndbl,
                cell.rows_per_mat,
                cols_per_mat,
                access_bits,
                target,
            ) {
                best_cycle_seen = best_cycle_seen.min(cand.eval.cycle_time);
                reduce_into(&mut best, thresholds, cand);
            }
            mcpat_guard::note_candidate();
        }
        Ok((best, best_cycle_seen))
    }

    fn enumerate(
        tech: &TechParams,
        spec: &ArraySpec,
        target: OptTarget,
        bounds: &SearchBounds,
        thresholds: &[Option<f64>],
    ) -> Result<(Vec<Option<Scored>>, f64), ArrayError> {
        let entries = spec.entries as usize;
        let bits = spec.bits_per_entry as usize;

        let mut cells: Vec<SweepCell> = Vec::new();
        for &nspd in bounds.nspd_options {
            if nspd > entries {
                continue;
            }
            let rows_total = entries.div_ceil(nspd);
            let cols_total = bits * nspd;
            for ndbl in pow2s_up_to(bounds.max_ndbl.min(rows_total)) {
                let rows_per_mat = rows_total.div_ceil(ndbl);
                if rows_per_mat > bounds.max_rows_per_mat {
                    continue;
                }
                cells.push(SweepCell {
                    nspd,
                    ndbl,
                    rows_per_mat,
                    cols_total,
                });
            }
        }

        let min_parallel = if spec.total_bits() >= PAR_SWEEP_MIN_BITS {
            2
        } else {
            usize::MAX
        };
        budget_check(spec)?;
        let sweeps = mcpat_par::par_map(&cells, min_parallel, |_, cell| {
            sweep_cell(tech, spec, target, bounds, thresholds, cell)
        })
        .map_err(|e| ArrayError::Worker {
            name: spec.name.clone(),
            detail: e.to_string(),
        })?;

        let mut best: Vec<Option<Scored>> = vec![None; thresholds.len()];
        let mut best_cycle_seen = f64::INFINITY;
        for sweep in sweeps {
            let (partial, cycle) = sweep?;
            best_cycle_seen = best_cycle_seen.min(cycle);
            for (slot, cand) in best.iter_mut().zip(partial) {
                if let Some(c) = cand {
                    if slot.is_none_or(|b| better(&c, &b)) {
                        *slot = Some(c);
                    }
                }
            }
        }
        Ok((best, best_cycle_seen))
    }

    /// Solves `spec` with the unhoisted reference sweep. Same contract
    /// and same results, bit for bit, as [`super::solve_uncached`].
    ///
    /// # Errors
    ///
    /// See [`ArrayError`]; identical failure behavior to the fast path.
    pub fn solve_reference(
        tech: &TechParams,
        spec: &ArraySpec,
        target: OptTarget,
    ) -> Result<SolvedArray, ArrayError> {
        if spec.entries == 0 || spec.bits_per_entry == 0 {
            return Err(ArrayError::DegenerateSpec {
                name: spec.name.clone(),
            });
        }

        let is_cam = spec.kind == ArrayKind::Cam;
        let normal = if is_cam { &NORMAL_CAM } else { &NORMAL_RAM };
        let wide = if is_cam { &WIDE_CAM } else { &WIDE_RAM };
        let req = spec.max_cycle_time;

        budget_check(spec)?;
        let (mut strict, cycle_strict) = enumerate(tech, spec, target, normal, &[req])?;
        if let Some(c) = strict.pop().flatten() {
            return Ok(materialize(spec, c, None));
        }

        let thresholds: Vec<Option<f64>> = match req {
            Some(r) => std::iter::once(Some(r))
                .chain(CYCLE_RELAX_FACTORS.iter().map(|f| Some(r * f)))
                .chain(std::iter::once(None))
                .collect(),
            None => vec![None],
        };
        budget_check(spec)?;
        let (rungs, cycle_wide) = enumerate(tech, spec, target, wide, &thresholds)?;
        let last = rungs.len() - 1;
        for (i, cand) in rungs.into_iter().enumerate() {
            let Some(c) = cand else { continue };
            let achieved = c.eval.cycle_time;
            let relaxation = Some(match (i, req) {
                (0, _) | (_, None) => Relaxation::WidenedBounds,
                (_, Some(_)) if i == last => Relaxation::CycleDropped { achieved },
                (_, Some(_)) => Relaxation::CycleRelaxed {
                    factor: i
                        .checked_sub(1)
                        .and_then(|j| CYCLE_RELAX_FACTORS.get(j))
                        .copied()
                        .unwrap_or(f64::INFINITY),
                    achieved,
                },
            });
            return Ok(materialize(spec, c, relaxation));
        }

        let best_cycle = cycle_strict.min(cycle_wide);
        Err(ArrayError::NoFeasiblePartition {
            name: spec.name.clone(),
            required_cycle: req,
            best_cycle: if best_cycle.is_finite() {
                best_cycle
            } else {
                0.0
            },
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::spec::Ports;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N65, DeviceType::Hp, 360.0)
    }

    #[test]
    fn l1_sized_array_solves_fast_and_small() {
        let t = tech();
        let s = ArraySpec::ram(32 * 1024, 64).named("l1d");
        let a = s.solve(&t, OptTarget::EnergyDelay).unwrap();
        assert!(a.access_time < 2e-9, "access = {:e}", a.access_time);
        // A 32 KB array at 65 nm is well under 1 mm².
        assert!(a.area < 1e-6, "area = {:e} m²", a.area);
        assert!(a.read_energy > 1e-12 && a.read_energy < 1e-9);
    }

    #[test]
    fn bigger_arrays_are_slower_and_leakier() {
        let t = tech();
        let small = ArraySpec::ram(32 * 1024, 64)
            .solve(&t, OptTarget::EnergyDelay)
            .unwrap();
        let big = ArraySpec::ram(2 * 1024 * 1024, 64)
            .solve(&t, OptTarget::EnergyDelay)
            .unwrap();
        assert!(big.access_time > small.access_time);
        assert!(big.leakage.total() > 10.0 * small.leakage.total());
        assert!(big.area > 20.0 * small.area);
    }

    #[test]
    fn delay_target_beats_energy_target_on_delay() {
        let t = tech();
        let spec = ArraySpec::ram(1024 * 1024, 64);
        let fast = spec.solve(&t, OptTarget::Delay).unwrap();
        let frugal = spec.solve(&t, OptTarget::Energy).unwrap();
        assert!(fast.access_time <= frugal.access_time);
        assert!(frugal.read_energy <= fast.read_energy);
    }

    #[test]
    fn cycle_constraint_is_respected() {
        let t = tech();
        let spec = ArraySpec::ram(256 * 1024, 64).with_max_cycle_time(1.0 / 1.4e9);
        let a = spec.solve(&t, OptTarget::EnergyDelay).unwrap();
        assert!(a.cycle_time <= 1.0 / 1.4e9 + 1e-15);
    }

    #[test]
    fn impossible_cycle_constraint_degrades_gracefully() {
        // A 16 MB array cannot cycle in 1 ps; instead of failing, the
        // solver walks the relaxation ladder all the way to dropping the
        // constraint and says so.
        let t = tech();
        let spec = ArraySpec::ram(16 * 1024 * 1024, 64)
            .with_max_cycle_time(1e-12)
            .named("l3-bank");
        let a = spec.solve(&t, OptTarget::Delay).unwrap();
        match a.relaxation {
            Some(Relaxation::CycleDropped { achieved }) => {
                assert!(achieved > 1e-12);
                assert!((achieved - a.cycle_time).abs() < 1e-18);
            }
            other => panic!("expected the cycle constraint to be dropped, got {other:?}"),
        }
        let warn = a.relaxation_warning().expect("a relaxed solve must warn");
        assert_eq!(warn.path, "l3-bank");
        assert!(
            warn.message.contains("cycle-time constraint dropped"),
            "{warn}"
        );
    }

    #[test]
    fn unrelaxed_solves_carry_no_warning() {
        let t = tech();
        let a = ArraySpec::ram(32 * 1024, 64)
            .solve(&t, OptTarget::EnergyDelay)
            .unwrap();
        assert_eq!(a.relaxation, None);
        assert!(a.relaxation_warning().is_none());
    }

    #[test]
    fn deep_narrow_array_needs_widened_bounds() {
        // 2M entries × 8 bits: with nspd ≤ 8 and ndbl ≤ 128 every mat
        // would exceed 1024 rows, so the standard search space is empty.
        // The widened rung maps it.
        let t = tech();
        let spec = ArraySpec::table(2 * 1024 * 1024, 8).named("deep-table");
        let a = spec.solve(&t, OptTarget::EnergyDelay).unwrap();
        assert_eq!(a.relaxation, Some(Relaxation::WidenedBounds));
        let warn = a.relaxation_warning().expect("widened solve must warn");
        assert!(warn.message.contains("widening"), "{warn}");
    }

    #[test]
    fn mildly_tight_cycle_relaxes_by_a_bounded_factor() {
        // Find the fastest achievable cycle, then demand a bit better
        // than that: the ladder should settle on a small multiplier, not
        // drop the constraint.
        let t = tech();
        let free = ArraySpec::ram(1024 * 1024, 64)
            .solve(&t, OptTarget::Delay)
            .unwrap();
        let spec = ArraySpec::ram(1024 * 1024, 64)
            .with_max_cycle_time(free.cycle_time * 0.95)
            .named("l2-bank");
        let a = spec.solve(&t, OptTarget::Delay).unwrap();
        match a.relaxation {
            // Either the widened bounds found a faster organization…
            None | Some(Relaxation::WidenedBounds) => {}
            // …or a modest relaxation was enough: 0.95 × 1.25 > 1.
            Some(Relaxation::CycleRelaxed { factor, .. }) => assert!(factor <= 1.25),
            other => panic!("constraint should not be dropped for a 5% shortfall: {other:?}"),
        }
    }

    #[test]
    fn degenerate_spec_errors() {
        let t = tech();
        let spec = ArraySpec::table(0, 32);
        assert!(matches!(
            spec.solve(&t, OptTarget::Delay),
            Err(ArrayError::DegenerateSpec { .. })
        ));
    }

    #[test]
    fn register_file_with_many_ports_solves() {
        let t = tech();
        let spec = ArraySpec::table(128, 64)
            .with_ports(Ports::reg_file(6, 3))
            .named("int-rf");
        let a = spec.solve(&t, OptTarget::Delay).unwrap();
        assert!(a.access_time < 1e-9);
        assert!(a.read_energy > 0.0);
    }

    #[test]
    fn cam_solves_with_search_energy() {
        let t = tech();
        let spec = ArraySpec::cam(64, 64, 48).named("stq");
        let a = spec.solve(&t, OptTarget::EnergyDelay).unwrap();
        assert!(a.search_energy > 0.0);
        assert_eq!(a.ndwl, 1, "CAMs are not split horizontally");
    }

    #[test]
    fn narrow_access_reads_cost_less_than_full_block() {
        let t = tech();
        let full = ArraySpec::ram(512 * 1024, 64)
            .solve(&t, OptTarget::Energy)
            .unwrap();
        let narrow = ArraySpec::ram(512 * 1024, 64)
            .with_access_bits(128)
            .solve(&t, OptTarget::Energy)
            .unwrap();
        assert!(narrow.read_energy <= full.read_energy);
    }

    #[test]
    fn tie_break_is_a_total_order_independent_of_fold_order() {
        // Candidates with identical scores must reduce to the same
        // winner whatever order (or grouping) they are folded in — this
        // is what makes the parallel sweep bit-identical to serial.
        let raw = RawEval {
            rows_per_mat: 1,
            cols_per_mat: 1,
            access_time: 1.0,
            cycle_time: 1.0,
            read_energy: 1.0,
            write_energy: 1.0,
            search_energy: 0.0,
            leakage: StaticPower::default(),
            area: 1.0,
            height: 1.0,
            width: 1.0,
        };
        let mk = |score: f64, nspd: usize, ndwl: usize, ndbl: usize| Scored {
            score,
            nspd,
            ndwl,
            ndbl,
            eval: raw,
        };
        let cands = [
            mk(2.0, 1, 4, 4),
            mk(1.0, 2, 8, 1),
            mk(1.0, 2, 1, 8), // same score, lower (nspd, ndwl): must win
            mk(1.0, 4, 1, 1),
            mk(3.0, 1, 1, 1),
        ];
        // Fold in several shuffled orders, including split-and-merge
        // groupings that mimic per-thread partial reduces.
        let orders: [[usize; 5]; 4] = [
            [0, 1, 2, 3, 4],
            [4, 3, 2, 1, 0],
            [2, 0, 4, 1, 3],
            [1, 2, 0, 4, 3],
        ];
        for order in orders {
            let mut best: Option<Scored> = None;
            for &i in &order {
                if best.is_none_or(|b| better(&cands[i], &b)) {
                    best = Some(cands[i]);
                }
            }
            let w = best.unwrap();
            assert_eq!((w.score, w.nspd, w.ndwl, w.ndbl), (1.0, 2, 1, 8));
            // Split into two "threads" at every point and merge.
            for split in 1..order.len() {
                let reduce = |ix: &[usize]| {
                    let mut b: Option<Scored> = None;
                    for &i in ix {
                        if b.is_none_or(|x| better(&cands[i], &x)) {
                            b = Some(cands[i]);
                        }
                    }
                    b
                };
                let (lo, hi) = (reduce(&order[..split]), reduce(&order[split..]));
                let merged = match (lo, hi) {
                    (Some(a), Some(b)) => {
                        if better(&a, &b) {
                            a
                        } else {
                            b
                        }
                    }
                    (Some(a), None) | (None, Some(a)) => a,
                    (None, None) => panic!("non-empty inputs"),
                };
                assert_eq!(
                    (merged.score, merged.nspd, merged.ndwl, merged.ndbl),
                    (1.0, 2, 1, 8)
                );
            }
        }
    }

    #[test]
    fn fast_path_matches_reference_bit_for_bit_across_rungs_and_targets() {
        // The hoisted SoA sweep must pick the same organization and
        // produce the same bits as the retained reference sweep, on
        // every objective, including specs that exercise the strict
        // rung, the widened-bounds rung, the dropped-cycle rung, CAMs,
        // and many-ported register files.
        let t = tech();
        let specs = [
            ArraySpec::ram(32 * 1024, 64).named("rung0"),
            ArraySpec::table(2 * 1024 * 1024, 8).named("widened"),
            ArraySpec::ram(1024 * 1024, 64)
                .with_max_cycle_time(1e-12)
                .named("dropped"),
            ArraySpec::cam(64, 64, 48).named("cam"),
            ArraySpec::table(128, 64)
                .with_ports(Ports::reg_file(6, 3))
                .named("rf"),
        ];
        let targets = [
            OptTarget::Delay,
            OptTarget::Energy,
            OptTarget::EnergyDelay,
            OptTarget::EnergyDelaySquared,
            OptTarget::Area,
        ];
        for spec in &specs {
            for target in targets {
                let fast = solve_uncached(&t, spec, target).unwrap();
                let refr = reference::solve_reference(&t, spec, target).unwrap();
                let ctx = format!("{} / {target:?}", spec.name);
                assert_eq!(
                    (
                        fast.ndwl,
                        fast.ndbl,
                        fast.nspd,
                        fast.rows_per_mat,
                        fast.cols_per_mat
                    ),
                    (
                        refr.ndwl,
                        refr.ndbl,
                        refr.nspd,
                        refr.rows_per_mat,
                        refr.cols_per_mat
                    ),
                    "organization diverged: {ctx}"
                );
                for (a, b, what) in [
                    (fast.access_time, refr.access_time, "access_time"),
                    (fast.cycle_time, refr.cycle_time, "cycle_time"),
                    (fast.read_energy, refr.read_energy, "read_energy"),
                    (fast.write_energy, refr.write_energy, "write_energy"),
                    (fast.search_energy, refr.search_energy, "search_energy"),
                    (fast.area, refr.area, "area"),
                    (fast.height, refr.height, "height"),
                    (fast.width, refr.width, "width"),
                    (
                        fast.leakage.subthreshold,
                        refr.leakage.subthreshold,
                        "leakage.subthreshold",
                    ),
                    (fast.leakage.gate, refr.leakage.gate, "leakage.gate"),
                ] {
                    assert_eq!(a.to_bits(), b.to_bits(), "{what} diverged: {ctx}");
                }
                assert_eq!(
                    fast.relaxation, refr.relaxation,
                    "relaxation diverged: {ctx}"
                );
            }
        }
    }

    #[test]
    fn reference_mode_routes_solves_through_the_reference_sweep() {
        let t = tech();
        let spec = ArraySpec::ram(64 * 1024, 64).named("mode-check");
        let fast = solve_uncached(&t, &spec, OptTarget::EnergyDelay).unwrap();
        set_reference_mode(true);
        let routed = solve_uncached(&t, &spec, OptTarget::EnergyDelay);
        set_reference_mode(false);
        let routed = routed.unwrap();
        assert_eq!(routed.access_time.to_bits(), fast.access_time.to_bits());
        assert_eq!(routed.read_energy.to_bits(), fast.read_energy.to_bits());
        assert_eq!(
            (routed.ndwl, routed.ndbl, routed.nspd),
            (fast.ndwl, fast.ndbl, fast.nspd)
        );
    }

    #[test]
    fn parallel_sweep_matches_serial_bit_for_bit() {
        // A 2 MB array crosses PAR_SWEEP_MIN_BITS, so its sweep actually
        // fans out when more than one thread is available.
        let t = tech();
        let spec = ArraySpec::ram(2 * 1024 * 1024, 64).named("l2");
        mcpat_par::set_thread_override(1);
        let serial = solve_uncached(&t, &spec, OptTarget::EnergyDelay).unwrap();
        let mut parallel = Vec::new();
        for n in [2usize, 3, 8] {
            mcpat_par::set_thread_override(n);
            parallel.push(solve_uncached(&t, &spec, OptTarget::EnergyDelay).unwrap());
        }
        mcpat_par::set_thread_override(0);
        for p in parallel {
            assert_eq!(
                (p.ndwl, p.ndbl, p.nspd, p.rows_per_mat, p.cols_per_mat),
                (
                    serial.ndwl,
                    serial.ndbl,
                    serial.nspd,
                    serial.rows_per_mat,
                    serial.cols_per_mat
                )
            );
            assert_eq!(p.access_time.to_bits(), serial.access_time.to_bits());
            assert_eq!(p.read_energy.to_bits(), serial.read_energy.to_bits());
            assert_eq!(p.area.to_bits(), serial.area.to_bits());
        }
    }

    #[test]
    fn mixed_energy_interpolates() {
        let t = tech();
        let a = ArraySpec::ram(64 * 1024, 64)
            .solve(&t, OptTarget::EnergyDelay)
            .unwrap();
        let mixed = a.mixed_energy(0.5);
        assert!(mixed >= a.read_energy.min(a.write_energy));
        assert!(mixed <= a.read_energy.max(a.write_energy));
    }
}
