//! The array partition optimizer.
//!
//! This is McPAT's "engine + internal representation + optimizer" applied
//! to a single storage array: enumerate `Ndwl × Ndbl × Nspd`
//! partitionings, evaluate each candidate's power/area/timing with the
//! [`crate::mat::Mat`] and [`crate::htree::HTree`] models,
//! reject the ones that violate the cycle-time constraint, and return the
//! best under the requested objective.

use crate::htree::HTree;
use crate::mat::Mat;
use crate::spec::{ArrayKind, ArraySpec, OptTarget};
use mcpat_circuit::metrics::{CircuitMetrics, StaticPower};
use mcpat_circuit::mux::Multiplexer;
use mcpat_tech::TechParams;
use std::fmt;

/// Area overhead multiplying the raw mat+H-tree area: ECC bits,
/// row/column redundancy, BIST, and intra-array routing that the
/// idealized mat model does not capture.
const ARRAY_AREA_OVERHEAD: f64 = 1.55;

/// Errors from the array solver.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayError {
    /// The spec has zero entries or zero bits per entry.
    DegenerateSpec {
        /// Array name from the spec.
        name: String,
    },
    /// No enumerated partitioning met the constraints.
    NoFeasiblePartition {
        /// Array name from the spec.
        name: String,
        /// The cycle time demanded, if one was set, s.
        required_cycle: Option<f64>,
        /// The best cycle time any candidate achieved, s.
        best_cycle: f64,
    },
    /// A parallel sweep worker failed (a panic inside candidate
    /// evaluation, contained and surfaced as a typed error instead of
    /// unwinding across threads).
    Worker {
        /// Array name from the spec.
        name: String,
        /// Panic payload text from the failed worker.
        detail: String,
    },
    /// A resource budget tripped at one of the solver's cooperative
    /// checkpoints (deadline, cancellation, or memory ceiling — see
    /// `mcpat-guard`). Never cached: a timed-out solve is a fact about
    /// this call, not about the array.
    Budget {
        /// Array name from the spec.
        name: String,
        /// The budget violation, with partial-progress metadata.
        reason: mcpat_guard::GuardError,
    },
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::DegenerateSpec { name } => {
                write!(f, "array `{name}` has zero entries or zero width")
            }
            ArrayError::NoFeasiblePartition {
                name,
                required_cycle,
                best_cycle,
            } => match required_cycle {
                Some(req) => write!(
                    f,
                    "array `{name}`: no partitioning meets the {:.0} ps cycle constraint (best achieved {:.0} ps)",
                    req * 1e12,
                    best_cycle * 1e12
                ),
                None => write!(f, "array `{name}`: no valid partitioning found"),
            },
            ArrayError::Worker { name, detail } => {
                write!(f, "array `{name}`: solver worker failed: {detail}")
            }
            ArrayError::Budget { name, reason } => {
                write!(f, "array `{name}`: solve aborted: {reason}")
            }
        }
    }
}

impl std::error::Error for ArrayError {}

/// How far the solver had to degrade from the requested constraints to
/// find a partitioning (the *relaxation ladder*, tried in this order).
///
/// A solved array carrying a relaxation is still valid — every reported
/// number describes the organization actually chosen — but the original
/// request could not be honored exactly, which callers surface as a
/// warning diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Relaxation {
    /// Rung 1: the standard `Ndwl x Ndbl x Nspd` enumeration bounds
    /// found no candidate; widened bounds (more mats, taller/wider mats)
    /// did.
    WidenedBounds,
    /// Rung 2: the cycle-time constraint was relaxed by `factor`
    /// (1.1, 1.25, 1.5, then 2.0); `achieved` is the cycle time of the
    /// solution, s.
    CycleRelaxed {
        /// Multiplier applied to the requested cycle time.
        factor: f64,
        /// Cycle time actually achieved, s.
        achieved: f64,
    },
    /// Rung 3: the cycle-time constraint had to be dropped entirely;
    /// `achieved` is the unconstrained cycle time, s.
    CycleDropped {
        /// Cycle time actually achieved, s.
        achieved: f64,
    },
}

impl fmt::Display for Relaxation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Relaxation::WidenedBounds => {
                write!(f, "solved only after widening the partition search bounds")
            }
            Relaxation::CycleRelaxed { factor, achieved } => write!(
                f,
                "cycle-time constraint relaxed {factor}x (achieved {:.0} ps)",
                achieved * 1e12
            ),
            Relaxation::CycleDropped { achieved } => write!(
                f,
                "cycle-time constraint dropped (best achievable {:.0} ps)",
                achieved * 1e12
            ),
        }
    }
}

/// A fully solved array: the chosen organization plus its
/// power/area/timing results.
#[derive(Debug, Clone)]
pub struct SolvedArray {
    /// Name echoed from the spec.
    pub name: String,
    /// Horizontal mat count (wordline divisions).
    pub ndwl: usize,
    /// Vertical mat count (bitline divisions).
    pub ndbl: usize,
    /// Entries packed per physical row.
    pub nspd: usize,
    /// Rows per mat.
    pub rows_per_mat: usize,
    /// Columns per mat.
    pub cols_per_mat: usize,
    /// End-to-end access latency, s.
    pub access_time: f64,
    /// Random-access cycle time (pipelined), s.
    pub cycle_time: f64,
    /// Dynamic energy per read, J.
    pub read_energy: f64,
    /// Dynamic energy per write, J.
    pub write_energy: f64,
    /// Dynamic energy per associative search (CAM only, else 0), J.
    pub search_energy: f64,
    /// Total static power, W.
    pub leakage: StaticPower,
    /// Total area including periphery and routing, m².
    pub area: f64,
    /// Layout height, m.
    pub height: f64,
    /// Layout width, m.
    pub width: f64,
    /// How far the solver degraded from the requested constraints
    /// (`None` = solved exactly as asked).
    pub relaxation: Option<Relaxation>,
}

impl SolvedArray {
    /// The warning diagnostic describing this array's relaxation, if the
    /// solver had to degrade. The path is the array's name.
    #[must_use]
    pub fn relaxation_warning(&self) -> Option<mcpat_diag::Diagnostic> {
        self.relaxation
            .map(|r| mcpat_diag::Diagnostic::warning(self.name.clone(), r.to_string()))
    }

    /// Read-path metrics as a uniform [`CircuitMetrics`].
    #[must_use]
    pub fn read_metrics(&self) -> CircuitMetrics {
        CircuitMetrics {
            area: self.area,
            delay: self.access_time,
            energy_per_op: self.read_energy,
            leakage: self.leakage,
        }
    }

    /// Average energy of an access mix with the given read fraction, J.
    #[must_use]
    pub fn mixed_energy(&self, read_fraction: f64) -> f64 {
        let rf = read_fraction.clamp(0.0, 1.0);
        rf * self.read_energy + (1.0 - rf) * self.write_energy
    }

    /// Area efficiency: fraction of the footprint that is storage cells.
    #[must_use]
    pub fn storage_density_bits_per_m2(&self, total_bits: u64) -> f64 {
        total_bits as f64 / self.area
    }
}

fn pow2s_up_to(max: usize) -> impl Iterator<Item = usize> {
    (0..).map(|i| 1usize << i).take_while(move |&v| v <= max)
}

/// Scalar results of one candidate evaluation: everything a
/// [`SolvedArray`] carries except the (heap-allocated) name and the
/// relaxation tag, as plain `Copy` data. The enumeration loop works
/// entirely in these so the innermost sweep allocates nothing; the
/// winning candidate is materialized into a `SolvedArray` exactly once
/// per threshold, after the sweep.
#[derive(Clone, Copy)]
struct RawEval {
    rows_per_mat: usize,
    cols_per_mat: usize,
    access_time: f64,
    cycle_time: f64,
    read_energy: f64,
    write_energy: f64,
    search_energy: f64,
    leakage: StaticPower,
    area: f64,
    height: f64,
    width: f64,
}

/// A scored candidate organization.
#[derive(Clone, Copy)]
struct Scored {
    score: f64,
    nspd: usize,
    ndwl: usize,
    ndbl: usize,
    eval: RawEval,
}

/// The solver's total order: lower score wins, and exact score ties
/// break on lexicographic `(nspd, ndwl, ndbl)`. Being a total order
/// over distinct organizations makes the best-reduce independent of
/// enumeration order and of how candidates are grouped across threads,
/// so serial and parallel sweeps pick bit-identical winners.
fn better(a: &Scored, b: &Scored) -> bool {
    a.score < b.score || (a.score == b.score && (a.nspd, a.ndwl, a.ndbl) < (b.nspd, b.ndwl, b.ndbl))
}

/// Folds a candidate into the per-threshold best slots.
fn reduce_into(best: &mut [Option<Scored>], thresholds: &[Option<f64>], cand: Scored) {
    for (slot, limit) in best.iter_mut().zip(thresholds) {
        let ok_cycle = limit.is_none_or(|req| cand.eval.cycle_time <= req);
        if ok_cycle && slot.is_none_or(|b| better(&cand, &b)) {
            *slot = Some(cand);
        }
    }
}

/// Builds the full `SolvedArray` for a winning candidate — the only
/// place the solver allocates per solve.
fn materialize(spec: &ArraySpec, s: Scored, relaxation: Option<Relaxation>) -> SolvedArray {
    SolvedArray {
        name: spec.name.clone(),
        ndwl: s.ndwl,
        ndbl: s.ndbl,
        nspd: s.nspd,
        rows_per_mat: s.eval.rows_per_mat,
        cols_per_mat: s.eval.cols_per_mat,
        access_time: s.eval.access_time,
        cycle_time: s.eval.cycle_time,
        read_energy: s.eval.read_energy,
        write_energy: s.eval.write_energy,
        search_energy: s.eval.search_energy,
        leakage: s.eval.leakage,
        area: s.eval.area,
        height: s.eval.height,
        width: s.eval.width,
        relaxation,
    }
}

/// One `(nspd, ndbl)` cell of the outer enumeration space — the unit of
/// work distributed across sweep threads.
#[derive(Clone, Copy)]
struct OuterCell {
    nspd: usize,
    ndbl: usize,
    rows_per_mat: usize,
    cols_total: usize,
}

/// The `Ndwl × Ndbl × Nspd` enumeration limits for one search pass.
struct SearchBounds {
    nspd_options: &'static [usize],
    max_ndwl: usize,
    max_ndbl: usize,
    max_rows_per_mat: usize,
    max_cols_per_mat: usize,
}

/// Standard bounds — the original McPAT/CACTI-style search space.
const NORMAL_RAM: SearchBounds = SearchBounds {
    nspd_options: &[1, 2, 4, 8],
    max_ndwl: 64,
    max_ndbl: 128,
    max_rows_per_mat: 1024,
    max_cols_per_mat: 2048,
};

/// Widened bounds for relaxation rung 1: more mats and taller/wider
/// mats, so extreme geometries (very deep, very narrow, …) still map.
const WIDE_RAM: SearchBounds = SearchBounds {
    nspd_options: &[1, 2, 4, 8, 16],
    max_ndwl: 256,
    max_ndbl: 512,
    max_rows_per_mat: 4096,
    max_cols_per_mat: 8192,
};

// CAMs keep all search bits on one matchline: no horizontal split, no
// row packing.
const NORMAL_CAM: SearchBounds = SearchBounds {
    nspd_options: &[1],
    max_ndwl: 1,
    ..NORMAL_RAM
};
const WIDE_CAM: SearchBounds = SearchBounds {
    nspd_options: &[1],
    max_ndwl: 1,
    ..WIDE_RAM
};

/// Cycle-constraint multipliers tried, in order, on relaxation rung 2.
const CYCLE_RELAX_FACTORS: [f64; 4] = [1.1, 1.25, 1.5, 2.0];

/// Arrays at least this large (total storage bits) fan the outer
/// `nspd × ndbl` sweep out across threads. Smaller arrays solve in well
/// under a millisecond and are typically already being solved
/// concurrently by the core/chip build fan-out, where an extra level of
/// nested spawning only oversubscribes the machine.
const PAR_SWEEP_MIN_BITS: u64 = 1 << 20;

/// Maps a tripped budget to the solver's typed error for `spec`.
fn budget_check(spec: &ArraySpec) -> Result<(), ArrayError> {
    mcpat_guard::check().map_err(|reason| ArrayError::Budget {
        name: spec.name.clone(),
        reason,
    })
}

/// Sweeps `ndwl` for one outer cell, reducing into per-threshold bests.
///
/// Checks the ambient [`mcpat_guard`] budget once per candidate
/// evaluation, so a deadline or cancellation stops the sweep between
/// candidates — never mid-evaluation — and the partial bests are simply
/// dropped (budget errors are not cacheable, so nothing poisoned lands
/// in the solve cache).
fn sweep_cell(
    tech: &TechParams,
    spec: &ArraySpec,
    target: OptTarget,
    bounds: &SearchBounds,
    thresholds: &[Option<f64>],
    cell: &OuterCell,
) -> Result<(Vec<Option<Scored>>, f64), ArrayError> {
    let access_bits = spec.access_bits.max(1) as usize;
    let mut best: Vec<Option<Scored>> = vec![None; thresholds.len()];
    let mut best_cycle_seen = f64::INFINITY;
    for ndwl in pow2s_up_to(bounds.max_ndwl.min(cell.cols_total)) {
        budget_check(spec)?;
        let cols_per_mat = cell.cols_total.div_ceil(ndwl);
        if cols_per_mat > bounds.max_cols_per_mat {
            continue;
        }
        if let Some(cand) = evaluate_raw(
            tech,
            spec,
            cell.nspd,
            ndwl,
            cell.ndbl,
            cell.rows_per_mat,
            cols_per_mat,
            access_bits,
            target,
        ) {
            best_cycle_seen = best_cycle_seen.min(cand.eval.cycle_time);
            reduce_into(&mut best, thresholds, cand);
        }
        mcpat_guard::note_candidate();
    }
    Ok((best, best_cycle_seen))
}

/// One enumeration pass. For each cycle-time threshold in `thresholds`
/// (`None` = unconstrained) the best-scoring candidate meeting it is
/// tracked independently, so the whole relaxation ladder needs at most
/// two passes. Also returns the fastest cycle time seen by any
/// candidate.
///
/// Large arrays distribute the outer `(nspd, ndbl)` cells across
/// threads; because [`better`] is a total order, merging the per-cell
/// bests in any grouping yields the same winner, so the parallel sweep
/// is bit-identical to the serial one.
fn enumerate(
    tech: &TechParams,
    spec: &ArraySpec,
    target: OptTarget,
    bounds: &SearchBounds,
    thresholds: &[Option<f64>],
) -> Result<(Vec<Option<Scored>>, f64), ArrayError> {
    let entries = spec.entries as usize;
    let bits = spec.bits_per_entry as usize;

    let mut cells: Vec<OuterCell> = Vec::new();
    for &nspd in bounds.nspd_options {
        if nspd > entries {
            continue;
        }
        let rows_total = entries.div_ceil(nspd);
        let cols_total = bits * nspd;
        for ndbl in pow2s_up_to(bounds.max_ndbl.min(rows_total)) {
            let rows_per_mat = rows_total.div_ceil(ndbl);
            if rows_per_mat > bounds.max_rows_per_mat {
                continue;
            }
            cells.push(OuterCell {
                nspd,
                ndbl,
                rows_per_mat,
                cols_total,
            });
        }
    }

    let min_parallel = if spec.total_bits() >= PAR_SWEEP_MIN_BITS {
        2
    } else {
        usize::MAX
    };
    budget_check(spec)?;
    let sweeps = mcpat_par::par_map(&cells, min_parallel, |_, cell| {
        sweep_cell(tech, spec, target, bounds, thresholds, cell)
    })
    .map_err(|e| ArrayError::Worker {
        name: spec.name.clone(),
        detail: e.to_string(),
    })?;

    let mut best: Vec<Option<Scored>> = vec![None; thresholds.len()];
    let mut best_cycle_seen = f64::INFINITY;
    // Surface per-cell budget trips in input order so the winning error
    // is deterministic regardless of how the sweep was scheduled.
    for sweep in sweeps {
        let (partial, cycle) = sweep?;
        best_cycle_seen = best_cycle_seen.min(cycle);
        for (slot, cand) in best.iter_mut().zip(partial) {
            if let Some(c) = cand {
                if slot.is_none_or(|b| better(&c, &b)) {
                    *slot = Some(c);
                }
            }
        }
    }
    Ok((best, best_cycle_seen))
}

/// Runs the optimizer. Prefer [`ArraySpec::solve`].
///
/// If the standard search space yields no feasible partitioning, the
/// solver degrades gracefully along a relaxation ladder instead of
/// failing outright:
///
/// 1. widen the `Ndwl × Ndbl × Nspd` enumeration bounds
///    ([`Relaxation::WidenedBounds`]);
/// 2. relax the cycle-time constraint by ×1.1, ×1.25, ×1.5, then ×2.0
///    ([`Relaxation::CycleRelaxed`]);
/// 3. drop the cycle-time constraint entirely
///    ([`Relaxation::CycleDropped`]).
///
/// A solution found on any rung records it in
/// [`SolvedArray::relaxation`], which callers surface as a warning.
///
/// # Errors
///
/// See [`ArrayError`]. [`ArrayError::NoFeasiblePartition`] is returned
/// only when even the fully relaxed search finds no evaluable candidate.
pub fn solve(
    tech: &TechParams,
    spec: &ArraySpec,
    target: OptTarget,
) -> Result<SolvedArray, ArrayError> {
    crate::memo::lookup_or_solve(tech, spec, target, solve_uncached)
}

/// The actual optimizer behind [`solve`], bypassing the content-
/// addressed cache in [`crate::memo`].
pub(crate) fn solve_uncached(
    tech: &TechParams,
    spec: &ArraySpec,
    target: OptTarget,
) -> Result<SolvedArray, ArrayError> {
    if spec.entries == 0 || spec.bits_per_entry == 0 {
        return Err(ArrayError::DegenerateSpec {
            name: spec.name.clone(),
        });
    }

    let is_cam = spec.kind == ArrayKind::Cam;
    let normal = if is_cam { &NORMAL_CAM } else { &NORMAL_RAM };
    let wide = if is_cam { &WIDE_CAM } else { &WIDE_RAM };
    let req = spec.max_cycle_time;

    // Rung 0: the standard search, exactly as requested.
    budget_check(spec)?;
    let (mut strict, cycle_strict) = enumerate(tech, spec, target, normal, &[req])?;
    if let Some(c) = strict.pop().flatten() {
        return Ok(materialize(spec, c, None));
    }

    // Relaxation ladder: one widened pass tracks every rung at once.
    let thresholds: Vec<Option<f64>> = match req {
        Some(r) => std::iter::once(Some(r))
            .chain(CYCLE_RELAX_FACTORS.iter().map(|f| Some(r * f)))
            .chain(std::iter::once(None))
            .collect(),
        None => vec![None],
    };
    budget_check(spec)?;
    let (rungs, cycle_wide) = enumerate(tech, spec, target, wide, &thresholds)?;
    let last = rungs.len() - 1;
    for (i, cand) in rungs.into_iter().enumerate() {
        let Some(c) = cand else { continue };
        let achieved = c.eval.cycle_time;
        let relaxation = Some(match (i, req) {
            (0, _) | (_, None) => Relaxation::WidenedBounds,
            (_, Some(_)) if i == last => Relaxation::CycleDropped { achieved },
            (_, Some(_)) => Relaxation::CycleRelaxed {
                // Rung i > 0 here, so i-1 indexes the factor that built
                // thresholds[i]; a mismatch falls back to the last rung.
                factor: i
                    .checked_sub(1)
                    .and_then(|j| CYCLE_RELAX_FACTORS.get(j))
                    .copied()
                    .unwrap_or(f64::INFINITY),
                achieved,
            },
        });
        return Ok(materialize(spec, c, relaxation));
    }

    let best_cycle = cycle_strict.min(cycle_wide);
    Err(ArrayError::NoFeasiblePartition {
        name: spec.name.clone(),
        required_cycle: req,
        best_cycle: if best_cycle.is_finite() {
            best_cycle
        } else {
            0.0
        },
    })
}

/// Evaluates one explicit `(Ndwl, Ndbl, Nspd)` partitioning without
/// searching — used by the optimizer-ablation experiment to quantify
/// what the search buys.
///
/// # Errors
///
/// Returns [`ArrayError::NoFeasiblePartition`] if the partitioning is
/// not evaluable (e.g. produces degenerate mats).
pub fn solve_fixed(
    tech: &TechParams,
    spec: &ArraySpec,
    ndwl: usize,
    ndbl: usize,
    nspd: usize,
) -> Result<SolvedArray, ArrayError> {
    if spec.entries == 0 || spec.bits_per_entry == 0 {
        return Err(ArrayError::DegenerateSpec {
            name: spec.name.clone(),
        });
    }
    let entries = spec.entries as usize;
    let bits = spec.bits_per_entry as usize;
    let rows_total = entries.div_ceil(nspd.max(1));
    let cols_total = bits * nspd.max(1);
    let rows_per_mat = rows_total.div_ceil(ndbl.max(1));
    let cols_per_mat = cols_total.div_ceil(ndwl.max(1));
    evaluate_raw(
        tech,
        spec,
        nspd.max(1),
        ndwl.max(1),
        ndbl.max(1),
        rows_per_mat,
        cols_per_mat,
        spec.access_bits.max(1) as usize,
        OptTarget::EnergyDelay,
    )
    .map(|c| materialize(spec, c, None))
    .ok_or(ArrayError::NoFeasiblePartition {
        name: spec.name.clone(),
        required_cycle: None,
        best_cycle: 0.0,
    })
}

#[allow(clippy::too_many_arguments)]
fn evaluate_raw(
    tech: &TechParams,
    spec: &ArraySpec,
    nspd: usize,
    ndwl: usize,
    ndbl: usize,
    rows_per_mat: usize,
    cols_per_mat: usize,
    access_bits: usize,
    target: OptTarget,
) -> Option<Scored> {
    let mat = Mat::new(tech, rows_per_mat, cols_per_mat, spec.kind, spec.ports);
    let written_per_mat = access_bits.div_ceil(ndwl).min(cols_per_mat);
    let m = mat.evaluate(cols_per_mat, written_per_mat, spec.search_bits);

    // Column select: the active stripe produces cols_total bits, the port
    // wants access_bits.
    let cols_total = cols_per_mat * ndwl;
    let mux_degree = (cols_total / access_bits.max(1)).max(1);
    let mux = Multiplexer::new(tech, mux_degree, 20e-15);
    let mux_m = mux.metrics();

    let addr_bits = (spec.entries.max(2) as f64).log2().ceil() as u32;
    let htree = HTree::new(
        tech,
        ndwl,
        ndbl,
        m.width,
        m.height,
        addr_bits,
        spec.access_bits,
    );
    let ht = htree.metrics();

    let n_mats = (ndwl * ndbl) as f64;
    let active = ndwl as f64;

    let read_energy =
        active * m.read_energy + access_bits as f64 * mux_m.energy_per_op + ht.energy_per_op;
    let write_energy = active * m.write_energy + ht.energy_per_op;
    let search_energy = if spec.kind == ArrayKind::Cam {
        ndbl as f64 * m.search_energy + ht.energy_per_op
    } else {
        0.0
    };

    let access_time = 2.0 * ht.delay + m.read_delay + mux_m.delay;
    let cycle_time = 1.2 * m.max_stage_delay.max(ht.delay);

    let area = (n_mats * m.area + ht.area) * ARRAY_AREA_OVERHEAD;
    // Aspect ratio from the mat grid; the overhead (ECC/redundancy/
    // routing) is apportioned as extra height so width × height = area.
    let width = ndwl as f64 * m.width;
    let height = area / width.max(1e-9);

    let leakage = m.leakage.scaled(n_mats) + ht.leakage + mux_m.leakage.scaled(access_bits as f64);

    let score = match target {
        OptTarget::Delay => access_time,
        OptTarget::Energy => read_energy,
        OptTarget::EnergyDelay => read_energy * access_time,
        OptTarget::EnergyDelaySquared => read_energy * access_time * access_time,
        OptTarget::Area => area,
    };
    if !score.is_finite() {
        return None;
    }
    Some(Scored {
        score,
        nspd,
        ndwl,
        ndbl,
        eval: RawEval {
            rows_per_mat,
            cols_per_mat,
            access_time,
            cycle_time,
            read_energy,
            write_energy,
            search_energy,
            leakage,
            area,
            height,
            width,
        },
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::spec::Ports;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N65, DeviceType::Hp, 360.0)
    }

    #[test]
    fn l1_sized_array_solves_fast_and_small() {
        let t = tech();
        let s = ArraySpec::ram(32 * 1024, 64).named("l1d");
        let a = s.solve(&t, OptTarget::EnergyDelay).unwrap();
        assert!(a.access_time < 2e-9, "access = {:e}", a.access_time);
        // A 32 KB array at 65 nm is well under 1 mm².
        assert!(a.area < 1e-6, "area = {:e} m²", a.area);
        assert!(a.read_energy > 1e-12 && a.read_energy < 1e-9);
    }

    #[test]
    fn bigger_arrays_are_slower_and_leakier() {
        let t = tech();
        let small = ArraySpec::ram(32 * 1024, 64)
            .solve(&t, OptTarget::EnergyDelay)
            .unwrap();
        let big = ArraySpec::ram(2 * 1024 * 1024, 64)
            .solve(&t, OptTarget::EnergyDelay)
            .unwrap();
        assert!(big.access_time > small.access_time);
        assert!(big.leakage.total() > 10.0 * small.leakage.total());
        assert!(big.area > 20.0 * small.area);
    }

    #[test]
    fn delay_target_beats_energy_target_on_delay() {
        let t = tech();
        let spec = ArraySpec::ram(1024 * 1024, 64);
        let fast = spec.solve(&t, OptTarget::Delay).unwrap();
        let frugal = spec.solve(&t, OptTarget::Energy).unwrap();
        assert!(fast.access_time <= frugal.access_time);
        assert!(frugal.read_energy <= fast.read_energy);
    }

    #[test]
    fn cycle_constraint_is_respected() {
        let t = tech();
        let spec = ArraySpec::ram(256 * 1024, 64).with_max_cycle_time(1.0 / 1.4e9);
        let a = spec.solve(&t, OptTarget::EnergyDelay).unwrap();
        assert!(a.cycle_time <= 1.0 / 1.4e9 + 1e-15);
    }

    #[test]
    fn impossible_cycle_constraint_degrades_gracefully() {
        // A 16 MB array cannot cycle in 1 ps; instead of failing, the
        // solver walks the relaxation ladder all the way to dropping the
        // constraint and says so.
        let t = tech();
        let spec = ArraySpec::ram(16 * 1024 * 1024, 64)
            .with_max_cycle_time(1e-12)
            .named("l3-bank");
        let a = spec.solve(&t, OptTarget::Delay).unwrap();
        match a.relaxation {
            Some(Relaxation::CycleDropped { achieved }) => {
                assert!(achieved > 1e-12);
                assert!((achieved - a.cycle_time).abs() < 1e-18);
            }
            other => panic!("expected the cycle constraint to be dropped, got {other:?}"),
        }
        let warn = a.relaxation_warning().expect("a relaxed solve must warn");
        assert_eq!(warn.path, "l3-bank");
        assert!(
            warn.message.contains("cycle-time constraint dropped"),
            "{warn}"
        );
    }

    #[test]
    fn unrelaxed_solves_carry_no_warning() {
        let t = tech();
        let a = ArraySpec::ram(32 * 1024, 64)
            .solve(&t, OptTarget::EnergyDelay)
            .unwrap();
        assert_eq!(a.relaxation, None);
        assert!(a.relaxation_warning().is_none());
    }

    #[test]
    fn deep_narrow_array_needs_widened_bounds() {
        // 2M entries × 8 bits: with nspd ≤ 8 and ndbl ≤ 128 every mat
        // would exceed 1024 rows, so the standard search space is empty.
        // The widened rung maps it.
        let t = tech();
        let spec = ArraySpec::table(2 * 1024 * 1024, 8).named("deep-table");
        let a = spec.solve(&t, OptTarget::EnergyDelay).unwrap();
        assert_eq!(a.relaxation, Some(Relaxation::WidenedBounds));
        let warn = a.relaxation_warning().expect("widened solve must warn");
        assert!(warn.message.contains("widening"), "{warn}");
    }

    #[test]
    fn mildly_tight_cycle_relaxes_by_a_bounded_factor() {
        // Find the fastest achievable cycle, then demand a bit better
        // than that: the ladder should settle on a small multiplier, not
        // drop the constraint.
        let t = tech();
        let free = ArraySpec::ram(1024 * 1024, 64)
            .solve(&t, OptTarget::Delay)
            .unwrap();
        let spec = ArraySpec::ram(1024 * 1024, 64)
            .with_max_cycle_time(free.cycle_time * 0.95)
            .named("l2-bank");
        let a = spec.solve(&t, OptTarget::Delay).unwrap();
        match a.relaxation {
            // Either the widened bounds found a faster organization…
            None | Some(Relaxation::WidenedBounds) => {}
            // …or a modest relaxation was enough: 0.95 × 1.25 > 1.
            Some(Relaxation::CycleRelaxed { factor, .. }) => assert!(factor <= 1.25),
            other => panic!("constraint should not be dropped for a 5% shortfall: {other:?}"),
        }
    }

    #[test]
    fn degenerate_spec_errors() {
        let t = tech();
        let spec = ArraySpec::table(0, 32);
        assert!(matches!(
            spec.solve(&t, OptTarget::Delay),
            Err(ArrayError::DegenerateSpec { .. })
        ));
    }

    #[test]
    fn register_file_with_many_ports_solves() {
        let t = tech();
        let spec = ArraySpec::table(128, 64)
            .with_ports(Ports::reg_file(6, 3))
            .named("int-rf");
        let a = spec.solve(&t, OptTarget::Delay).unwrap();
        assert!(a.access_time < 1e-9);
        assert!(a.read_energy > 0.0);
    }

    #[test]
    fn cam_solves_with_search_energy() {
        let t = tech();
        let spec = ArraySpec::cam(64, 64, 48).named("stq");
        let a = spec.solve(&t, OptTarget::EnergyDelay).unwrap();
        assert!(a.search_energy > 0.0);
        assert_eq!(a.ndwl, 1, "CAMs are not split horizontally");
    }

    #[test]
    fn narrow_access_reads_cost_less_than_full_block() {
        let t = tech();
        let full = ArraySpec::ram(512 * 1024, 64)
            .solve(&t, OptTarget::Energy)
            .unwrap();
        let narrow = ArraySpec::ram(512 * 1024, 64)
            .with_access_bits(128)
            .solve(&t, OptTarget::Energy)
            .unwrap();
        assert!(narrow.read_energy <= full.read_energy);
    }

    #[test]
    fn tie_break_is_a_total_order_independent_of_fold_order() {
        // Candidates with identical scores must reduce to the same
        // winner whatever order (or grouping) they are folded in — this
        // is what makes the parallel sweep bit-identical to serial.
        let raw = RawEval {
            rows_per_mat: 1,
            cols_per_mat: 1,
            access_time: 1.0,
            cycle_time: 1.0,
            read_energy: 1.0,
            write_energy: 1.0,
            search_energy: 0.0,
            leakage: StaticPower::default(),
            area: 1.0,
            height: 1.0,
            width: 1.0,
        };
        let mk = |score: f64, nspd: usize, ndwl: usize, ndbl: usize| Scored {
            score,
            nspd,
            ndwl,
            ndbl,
            eval: raw,
        };
        let cands = [
            mk(2.0, 1, 4, 4),
            mk(1.0, 2, 8, 1),
            mk(1.0, 2, 1, 8), // same score, lower (nspd, ndwl): must win
            mk(1.0, 4, 1, 1),
            mk(3.0, 1, 1, 1),
        ];
        // Fold in several shuffled orders, including split-and-merge
        // groupings that mimic per-thread partial reduces.
        let orders: [[usize; 5]; 4] = [
            [0, 1, 2, 3, 4],
            [4, 3, 2, 1, 0],
            [2, 0, 4, 1, 3],
            [1, 2, 0, 4, 3],
        ];
        for order in orders {
            let mut best: Option<Scored> = None;
            for &i in &order {
                if best.is_none_or(|b| better(&cands[i], &b)) {
                    best = Some(cands[i]);
                }
            }
            let w = best.unwrap();
            assert_eq!((w.score, w.nspd, w.ndwl, w.ndbl), (1.0, 2, 1, 8));
            // Split into two "threads" at every point and merge.
            for split in 1..order.len() {
                let reduce = |ix: &[usize]| {
                    let mut b: Option<Scored> = None;
                    for &i in ix {
                        if b.is_none_or(|x| better(&cands[i], &x)) {
                            b = Some(cands[i]);
                        }
                    }
                    b
                };
                let (lo, hi) = (reduce(&order[..split]), reduce(&order[split..]));
                let merged = match (lo, hi) {
                    (Some(a), Some(b)) => {
                        if better(&a, &b) {
                            a
                        } else {
                            b
                        }
                    }
                    (Some(a), None) | (None, Some(a)) => a,
                    (None, None) => panic!("non-empty inputs"),
                };
                assert_eq!(
                    (merged.score, merged.nspd, merged.ndwl, merged.ndbl),
                    (1.0, 2, 1, 8)
                );
            }
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_bit_for_bit() {
        // A 2 MB array crosses PAR_SWEEP_MIN_BITS, so its sweep actually
        // fans out when more than one thread is available.
        let t = tech();
        let spec = ArraySpec::ram(2 * 1024 * 1024, 64).named("l2");
        mcpat_par::set_thread_override(1);
        let serial = solve_uncached(&t, &spec, OptTarget::EnergyDelay).unwrap();
        let mut parallel = Vec::new();
        for n in [2usize, 3, 8] {
            mcpat_par::set_thread_override(n);
            parallel.push(solve_uncached(&t, &spec, OptTarget::EnergyDelay).unwrap());
        }
        mcpat_par::set_thread_override(0);
        for p in parallel {
            assert_eq!(
                (p.ndwl, p.ndbl, p.nspd, p.rows_per_mat, p.cols_per_mat),
                (
                    serial.ndwl,
                    serial.ndbl,
                    serial.nspd,
                    serial.rows_per_mat,
                    serial.cols_per_mat
                )
            );
            assert_eq!(p.access_time.to_bits(), serial.access_time.to_bits());
            assert_eq!(p.read_energy.to_bits(), serial.read_energy.to_bits());
            assert_eq!(p.area.to_bits(), serial.area.to_bits());
        }
    }

    #[test]
    fn mixed_energy_interpolates() {
        let t = tech();
        let a = ArraySpec::ram(64 * 1024, 64)
            .solve(&t, OptTarget::EnergyDelay)
            .unwrap();
        let mixed = a.mixed_energy(0.5);
        assert!(mixed >= a.read_energy.min(a.write_energy));
        assert!(mixed <= a.read_energy.max(a.write_energy));
    }
}
