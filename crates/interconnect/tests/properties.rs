#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Property-based tests for the interconnect models.

use mcpat_interconnect::noc::{NocConfig, NocStats, Topology};
use mcpat_interconnect::router::{Router, RouterConfig};
use mcpat_tech::{DeviceType, TechNode, TechParams};
use proptest::prelude::*;

fn tech() -> TechParams {
    TechParams::new(TechNode::N32, DeviceType::Hp, 360.0)
}

fn any_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (1u32..8, 1u32..8).prop_map(|(x, y)| Topology::Mesh { x, y }),
        (2u32..32).prop_map(|n| Topology::Ring { n }),
        (2u32..24).prop_map(|n| Topology::Bus { n }),
        (2u32..24).prop_map(|n| Topology::Crossbar { n }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_topology_builds_with_positive_costs(
        topology in any_topology(),
        flit_bits in 16u32..512,
        link_mm in 0.2..5.0f64,
    ) {
        let cfg = NocConfig {
            topology,
            flit_bits,
            vcs_per_port: 2,
            buffers_per_vc: 2,
            link_length: link_mm * 1e-3,
            clock_hz: 2e9,
        };
        let noc = cfg.build(&tech()).unwrap();
        prop_assert!(noc.energy_per_flit_hop() > 0.0);
        prop_assert!(noc.energy_per_flit_hop().is_finite());
        prop_assert!(noc.area() > 0.0);
        prop_assert!(noc.leakage().total() > 0.0);
        prop_assert!(noc.hop_latency() > 0.0);
        prop_assert!(noc.peak_dynamic_power() > 0.0);
    }

    #[test]
    fn mesh_link_and_router_counts_are_consistent(x in 1u32..16, y in 1u32..16) {
        let t = Topology::Mesh { x, y };
        prop_assert_eq!(t.router_count(), x * y);
        // Every router has at most 4 outbound mesh links.
        prop_assert!(t.link_count() <= 4 * t.router_count());
        // Handshake lemma: total links = 2 × edges.
        prop_assert_eq!(t.link_count() % 2, 0);
    }

    #[test]
    fn dynamic_power_is_linear_in_flits(
        topology in any_topology(),
        flits in 1u64..1_000_000u64,
        k in 2u64..10,
    ) {
        let cfg = NocConfig {
            topology,
            flit_bits: 128,
            vcs_per_port: 2,
            buffers_per_vc: 2,
            link_length: 1e-3,
            clock_hz: 2e9,
        };
        let noc = cfg.build(&tech()).unwrap();
        let s1 = NocStats { interval_s: 1e-3, flits, avg_hops: 0.0 };
        let s2 = NocStats { interval_s: 1e-3, flits: flits * k, avg_hops: 0.0 };
        let p1 = noc.dynamic_power(&s1);
        let p2 = noc.dynamic_power(&s2);
        prop_assert!((p2 / p1 - k as f64).abs() < 1e-6);
    }

    #[test]
    fn router_cost_grows_with_4x_buffers(
        buffers in 1u32..16,
        flit_bits in 32u32..256,
    ) {
        // Tiny buffer arrays are periphery-dominated, so small buffer
        // deltas can reshuffle the partition; a 4× capacity step must
        // dominate that noise.
        let t = tech();
        let small = Router::build(&t, &RouterConfig {
            ports: 5, vcs_per_port: 2, buffers_per_vc: buffers, flit_bits,
        }).unwrap();
        let big = Router::build(&t, &RouterConfig {
            ports: 5, vcs_per_port: 2, buffers_per_vc: buffers * 4, flit_bits,
        }).unwrap();
        prop_assert!(big.leakage().total() > small.leakage().total());
        prop_assert!(big.area() > small.area());
    }

    #[test]
    fn average_hops_grow_with_network_size(n in 2u32..10) {
        let small = Topology::Mesh { x: n, y: n }.average_hops();
        let big = Topology::Mesh { x: 2 * n, y: 2 * n }.average_hops();
        prop_assert!(big > small);
    }
}
