//! Shared-bus fabric: the low-cost alternative to a switched NoC for
//! small core counts (and the fabric of the Xeon Tulsa validation
//! target).

use mcpat_circuit::arbiter::MatrixArbiter;
use mcpat_circuit::metrics::{CircuitMetrics, StaticPower};
use mcpat_circuit::repeater::RepeatedWire;
use mcpat_tech::{TechParams, WireType};

/// A shared split-transaction bus connecting `taps` agents.
#[derive(Debug, Clone)]
pub struct Bus {
    /// Number of agents on the bus.
    pub taps: u32,
    /// Data width, bits.
    pub width_bits: u32,
    /// Total bus length, m.
    pub length: f64,
    wire: RepeatedWire,
    arbiter: CircuitMetrics,
    track_pitch: f64,
}

impl Bus {
    /// Builds a bus spanning `length` meters with `taps` agents.
    #[must_use]
    pub fn new(tech: &TechParams, taps: u32, width_bits: u32, length: f64) -> Bus {
        let wire = RepeatedWire::energy_derated(tech, WireType::Global, length.max(1e-6), 1.15);
        let arbiter = MatrixArbiter::new(tech, taps.max(1) as usize).metrics();
        Bus {
            taps,
            width_bits,
            length,
            wire,
            arbiter,
            track_pitch: 2.0 * tech.wire(WireType::Global).pitch,
        }
    }

    /// Energy of one bus transfer (arbitration + full-length broadcast,
    /// ≈50% toggle), J.
    #[must_use]
    pub fn energy_per_transfer(&self) -> f64 {
        self.arbiter.energy_per_op
            + 0.5 * f64::from(self.width_bits) * self.wire.metrics.energy_per_op
    }

    /// Transfer latency (arbitration + flight time), s.
    #[must_use]
    pub fn latency(&self) -> f64 {
        self.arbiter.delay + self.wire.metrics.delay
    }

    /// Bus area (repeaters + wiring tracks + arbiter), m².
    #[must_use]
    pub fn area(&self) -> f64 {
        // Wiring tracks at double global pitch for shielding.
        let track_area = self.length * f64::from(self.width_bits) * self.track_pitch;
        self.wire.metrics.area * f64::from(self.width_bits) + self.arbiter.area + track_area
    }

    /// Bus leakage, W.
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        self.wire.metrics.leakage.scaled(f64::from(self.width_bits)) + self.arbiter.leakage
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N65, DeviceType::Hp, 360.0)
    }

    #[test]
    fn bus_costs_grow_with_length_and_width() {
        let t = tech();
        let small = Bus::new(&t, 4, 128, 5e-3);
        let long = Bus::new(&t, 4, 128, 15e-3);
        let wide = Bus::new(&t, 4, 512, 5e-3);
        assert!(long.energy_per_transfer() > small.energy_per_transfer());
        assert!(wide.energy_per_transfer() > small.energy_per_transfer());
    }

    #[test]
    fn more_taps_make_arbitration_pricier() {
        let t = tech();
        let few = Bus::new(&t, 2, 128, 5e-3);
        let many = Bus::new(&t, 16, 128, 5e-3);
        assert!(many.arbiter.energy_per_op > few.arbiter.energy_per_op);
    }

    #[test]
    fn transfer_energy_is_plausible() {
        let b = Bus::new(&tech(), 4, 256, 10e-3);
        let pj = b.energy_per_transfer() * 1e12;
        assert!(pj > 1.0 && pj < 2000.0, "{pj} pJ");
    }
}
