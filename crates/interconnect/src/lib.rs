//! # mcpat-interconnect — on-chip network models for mcpat-rs
//!
//! McPAT models the network-on-chip as routers plus links, in the style
//! of Orion but built on this framework's own wire and array models:
//!
//! * [`router`] — a virtual-channel router: input buffers, route compute,
//!   VC and switch allocation (matrix arbiters), and a matrix crossbar;
//! * [`link`] — point-to-point repeated-wire links;
//! * [`bus`] — a shared bus fabric (the Niagara-style alternative for
//!   small core counts);
//! * [`noc`] — whole-network assembly for 2D meshes, rings, and buses,
//!   with runtime power from flit statistics.
//!
//! ```
//! use mcpat_interconnect::noc::{NocConfig, Topology};
//! use mcpat_tech::{TechNode, DeviceType, TechParams};
//!
//! let tech = TechParams::new(TechNode::N32, DeviceType::Hp, 360.0);
//! let cfg = NocConfig {
//!     topology: Topology::Mesh { x: 4, y: 4 },
//!     flit_bits: 128,
//!     vcs_per_port: 4,
//!     buffers_per_vc: 4,
//!     link_length: 1.5e-3,
//!     clock_hz: 2.0e9,
//! };
//! let noc = cfg.build(&tech)?;
//! assert!(noc.area() > 0.0);
//! # Ok::<(), mcpat_array::ArrayError>(())
//! ```

pub mod bus;
pub mod link;
pub mod noc;
pub mod router;

pub use bus::Bus;
pub use link::Link;
pub use noc::{NocConfig, NocModel, NocStats, Topology};
pub use router::{Router, RouterConfig};
