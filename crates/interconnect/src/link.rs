//! Point-to-point NoC links: parallel repeated global wires.

use mcpat_circuit::metrics::StaticPower;
use mcpat_circuit::repeater::RepeatedWire;
use mcpat_tech::{TechParams, WireType};

/// A unidirectional link of `flit_bits` wires and a given length.
#[derive(Debug, Clone)]
pub struct Link {
    /// Wires in the link.
    pub flit_bits: u32,
    /// Physical length, m.
    pub length: f64,
    wire: RepeatedWire,
}

impl Link {
    /// Builds a link using energy-derated repeated global wires (McPAT's
    /// optimizer allows 10% delay slack on links).
    #[must_use]
    pub fn new(tech: &TechParams, flit_bits: u32, length: f64) -> Link {
        let wire = RepeatedWire::energy_derated(tech, WireType::Global, length.max(1e-6), 1.10);
        Link {
            flit_bits,
            length,
            wire,
        }
    }

    /// Energy of transmitting one flit (≈50% bit toggle), J.
    #[must_use]
    pub fn energy_per_flit(&self) -> f64 {
        0.5 * f64::from(self.flit_bits) * self.wire.metrics.energy_per_op
    }

    /// One-way traversal latency, s.
    #[must_use]
    pub fn latency(&self) -> f64 {
        self.wire.metrics.delay
    }

    /// Repeater area of all wires, m².
    #[must_use]
    pub fn area(&self) -> f64 {
        self.wire.metrics.area * f64::from(self.flit_bits)
    }

    /// Leakage of all repeaters, W.
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        self.wire.metrics.leakage.scaled(f64::from(self.flit_bits))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N32, DeviceType::Hp, 360.0)
    }

    #[test]
    fn longer_links_cost_more() {
        let t = tech();
        let short = Link::new(&t, 128, 1e-3);
        let long = Link::new(&t, 128, 4e-3);
        assert!(long.energy_per_flit() > 2.0 * short.energy_per_flit());
        assert!(long.latency() > short.latency());
    }

    #[test]
    fn flit_energy_scales_with_width() {
        let t = tech();
        let narrow = Link::new(&t, 64, 2e-3);
        let wide = Link::new(&t, 256, 2e-3);
        assert!((wide.energy_per_flit() / narrow.energy_per_flit() - 4.0).abs() < 0.1);
    }

    #[test]
    fn millimeter_link_latency_is_sub_ns() {
        let l = Link::new(&tech(), 128, 1e-3);
        assert!(l.latency() < 1e-9);
    }
}
