//! Virtual-channel router model.

use mcpat_array::{ArrayError, ArraySpec, OptTarget, Ports, SolvedArray};
use mcpat_circuit::arbiter::MatrixArbiter;
use mcpat_circuit::crossbar::Crossbar;
use mcpat_circuit::metrics::{CircuitMetrics, StaticPower};
use mcpat_tech::TechParams;

/// Router microarchitecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Physical ports (5 for a 2D mesh: N/S/E/W + local).
    pub ports: u32,
    /// Virtual channels per port.
    pub vcs_per_port: u32,
    /// Flit buffers per VC.
    pub buffers_per_vc: u32,
    /// Flit width, bits.
    pub flit_bits: u32,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            ports: 5,
            vcs_per_port: 4,
            buffers_per_vc: 4,
            flit_bits: 128,
        }
    }
}

impl RouterConfig {
    /// Reports every microarchitectural problem into `diags`, with field
    /// paths rooted under `path`.
    pub fn validate_into(&self, path: &str, diags: &mut mcpat_diag::Diagnostics) {
        let at = |field: &str| mcpat_diag::join_path(path, field);
        if self.ports < 2 {
            diags.error(
                at("ports"),
                format!("a router needs at least 2 ports, got {}", self.ports),
            );
        }
        if self.vcs_per_port == 0 {
            diags.error(at("vcs_per_port"), "need at least one virtual channel");
        }
        if self.buffers_per_vc == 0 {
            diags.error(at("buffers_per_vc"), "need at least one buffer per VC");
        }
        if self.flit_bits == 0 {
            diags.error(at("flit_bits"), "flit width must be positive");
        }
    }
}

/// A built router.
#[derive(Debug, Clone)]
pub struct Router {
    /// Configuration used.
    pub config: RouterConfig,
    /// Input buffer array (one instance per port).
    pub input_buffer: SolvedArray,
    /// Crossbar metrics per traversal.
    pub crossbar: CircuitMetrics,
    /// VC allocator metrics per allocation.
    pub vc_allocator: CircuitMetrics,
    /// Switch allocator metrics per allocation.
    pub switch_allocator: CircuitMetrics,
}

impl Router {
    /// Builds the router model.
    ///
    /// # Errors
    ///
    /// Propagates [`ArrayError`] from the buffer array.
    pub fn build(tech: &TechParams, config: &RouterConfig) -> Result<Router, ArrayError> {
        let entries = u64::from(config.vcs_per_port) * u64::from(config.buffers_per_vc);
        let input_buffer = ArraySpec::table(entries.max(2), config.flit_bits)
            .with_ports(Ports::reg_file(1, 1))
            .named("router-input-buffer")
            .solve(tech, OptTarget::EnergyDelay)?;

        let xbar = Crossbar::new(
            tech,
            config.ports as usize,
            config.ports as usize,
            config.flit_bits as usize,
        );
        // VC allocation arbitrates among all VCs competing for an output
        // VC; switch allocation among ports.
        let vc_arb = MatrixArbiter::new(tech, (config.ports * config.vcs_per_port) as usize);
        let sw_arb = MatrixArbiter::new(tech, config.ports as usize);

        Ok(Router {
            config: *config,
            input_buffer,
            crossbar: xbar.metrics_per_traversal(),
            vc_allocator: vc_arb.metrics(),
            switch_allocator: sw_arb.metrics(),
        })
    }

    /// Energy of one flit transiting this router (buffer write + read,
    /// allocation, crossbar traversal), J.
    #[must_use]
    pub fn energy_per_flit(&self) -> f64 {
        self.input_buffer.write_energy
            + self.input_buffer.read_energy
            + self.vc_allocator.energy_per_op
            + self.switch_allocator.energy_per_op
            + self.crossbar.energy_per_op
    }

    /// Router area (all ports), m².
    #[must_use]
    pub fn area(&self) -> f64 {
        let p = f64::from(self.config.ports);
        self.input_buffer.area * p
            + self.crossbar.area
            + self.vc_allocator.area * p
            + self.switch_allocator.area
    }

    /// Router leakage (all ports), W.
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        let p = f64::from(self.config.ports);
        self.input_buffer.leakage.scaled(p)
            + self.crossbar.leakage
            + self.vc_allocator.leakage.scaled(p)
            + self.switch_allocator.leakage
    }

    /// Minimum cycle time of the router pipeline, s.
    #[must_use]
    pub fn cycle_time(&self) -> f64 {
        self.input_buffer
            .cycle_time
            .max(self.crossbar.delay)
            .max(self.vc_allocator.delay)
            .max(self.switch_allocator.delay)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N45, DeviceType::Hp, 360.0)
    }

    #[test]
    fn router_builds_with_positive_costs() {
        let r = Router::build(&tech(), &RouterConfig::default()).unwrap();
        assert!(r.energy_per_flit() > 0.0);
        assert!(r.area() > 0.0);
        assert!(r.leakage().total() > 0.0);
        assert!(r.cycle_time() > 0.0);
    }

    #[test]
    fn wider_flits_cost_more_energy() {
        let t = tech();
        let narrow = Router::build(
            &t,
            &RouterConfig {
                flit_bits: 64,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        let wide = Router::build(
            &t,
            &RouterConfig {
                flit_bits: 256,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        assert!(wide.energy_per_flit() > 2.0 * narrow.energy_per_flit());
    }

    #[test]
    fn more_vcs_mean_more_buffer_leakage() {
        let t = tech();
        let few = Router::build(
            &t,
            &RouterConfig {
                vcs_per_port: 2,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        let many = Router::build(
            &t,
            &RouterConfig {
                vcs_per_port: 8,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        assert!(many.leakage().total() > few.leakage().total());
    }

    #[test]
    fn validate_rejects_degenerate_routers() {
        let mut d = mcpat_diag::Diagnostics::new();
        RouterConfig::default().validate_into("router", &mut d);
        assert!(!d.has_errors(), "{d}");
        let broken = RouterConfig {
            ports: 1,
            buffers_per_vc: 0,
            ..RouterConfig::default()
        };
        let mut d = mcpat_diag::Diagnostics::new();
        broken.validate_into("router", &mut d);
        assert_eq!(d.error_count(), 2, "{d}");
    }

    #[test]
    fn flit_energy_is_picojoule_scale() {
        let r = Router::build(&tech(), &RouterConfig::default()).unwrap();
        let pj = r.energy_per_flit() * 1e12;
        assert!(pj > 0.5 && pj < 500.0, "{pj} pJ");
    }
}
