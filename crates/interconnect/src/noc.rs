//! Whole-network assembly and runtime power.

use crate::bus::Bus;
use crate::link::Link;
use crate::router::{Router, RouterConfig};
use mcpat_array::ArrayError;
use mcpat_circuit::arbiter::MatrixArbiter;
use mcpat_circuit::crossbar::Crossbar;
use mcpat_circuit::metrics::CircuitMetrics;
use mcpat_circuit::metrics::StaticPower;
use mcpat_tech::TechParams;

/// Network topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Topology {
    /// 2D mesh of `x × y` routers (5-port).
    Mesh {
        /// Horizontal routers.
        x: u32,
        /// Vertical routers.
        y: u32,
    },
    /// Ring of `n` routers (3-port).
    Ring {
        /// Router count.
        n: u32,
    },
    /// A single shared bus among `n` agents.
    Bus {
        /// Agent count.
        n: u32,
    },
    /// A full crossbar among `n` agents (the Niagara core↔L2 fabric).
    Crossbar {
        /// Agent count.
        n: u32,
    },
}

impl Topology {
    /// Number of routers (0 for a bus).
    #[must_use]
    pub fn router_count(self) -> u32 {
        match self {
            Topology::Mesh { x, y } => x * y,
            Topology::Ring { n } => n,
            Topology::Bus { .. } | Topology::Crossbar { .. } => 0,
        }
    }

    /// Number of unidirectional links (0 for a bus).
    #[must_use]
    pub fn link_count(self) -> u32 {
        match self {
            // Each mesh edge is two unidirectional links.
            Topology::Mesh { x, y } => 2 * (x * (y - 1) + y * (x - 1)),
            Topology::Ring { n } => 2 * n,
            Topology::Bus { .. } | Topology::Crossbar { .. } => 0,
        }
    }

    /// Average hop count of uniform-random traffic.
    #[must_use]
    pub fn average_hops(self) -> f64 {
        match self {
            Topology::Mesh { x, y } => (f64::from(x) + f64::from(y)) / 3.0,
            Topology::Ring { n } => f64::from(n) / 4.0,
            Topology::Bus { .. } | Topology::Crossbar { .. } => 1.0,
        }
    }
}

/// NoC configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NocConfig {
    /// Network topology.
    pub topology: Topology,
    /// Flit width, bits.
    pub flit_bits: u32,
    /// Virtual channels per router port.
    pub vcs_per_port: u32,
    /// Buffers per VC.
    pub buffers_per_vc: u32,
    /// Link length between adjacent routers (≈ tile pitch), m.
    pub link_length: f64,
    /// Network clock, Hz.
    pub clock_hz: f64,
}

impl NocConfig {
    /// Full sanity validation: reports **every** violated invariant into
    /// one [`mcpat_diag::Diagnostics`] pass instead of stopping at the
    /// first.
    #[must_use]
    pub fn validate(&self) -> mcpat_diag::Diagnostics {
        let mut d = mcpat_diag::Diagnostics::new();
        match self.topology {
            Topology::Mesh { x, y } => {
                if x == 0 || y == 0 {
                    d.error(
                        "topology",
                        format!("mesh dimensions {x}x{y} must both be positive"),
                    );
                }
            }
            Topology::Ring { n } | Topology::Bus { n } | Topology::Crossbar { n } => {
                if n == 0 {
                    d.error("topology", "fabric needs at least one endpoint");
                }
            }
        }
        // The switched topologies instantiate routers; validate the
        // router [`build`](NocConfig::build) would derive.
        if matches!(self.topology, Topology::Mesh { .. } | Topology::Ring { .. }) {
            let ports = match self.topology {
                Topology::Mesh { .. } => 5,
                _ => 3,
            };
            RouterConfig {
                ports,
                vcs_per_port: self.vcs_per_port,
                buffers_per_vc: self.buffers_per_vc,
                flit_bits: self.flit_bits,
            }
            .validate_into("router", &mut d);
        } else if self.flit_bits == 0 {
            d.error("flit_bits", "flit width must be positive");
        }
        d.require_positive("link_length", "link length", self.link_length);
        d.require_positive("clock_hz", "network clock", self.clock_hz);
        d
    }

    /// Builds the network model.
    ///
    /// # Errors
    ///
    /// Propagates [`ArrayError`] from the router buffers.
    pub fn build(&self, tech: &TechParams) -> Result<NocModel, ArrayError> {
        let (router, link, bus) = match self.topology {
            Topology::Mesh { .. } | Topology::Ring { .. } => {
                let ports = match self.topology {
                    Topology::Mesh { .. } => 5,
                    _ => 3,
                };
                let rc = RouterConfig {
                    ports,
                    vcs_per_port: self.vcs_per_port,
                    buffers_per_vc: self.buffers_per_vc,
                    flit_bits: self.flit_bits,
                };
                let router = Router::build(tech, &rc)?;
                let link = Link::new(tech, self.flit_bits, self.link_length);
                (Some(router), Some(link), None)
            }
            Topology::Bus { n } => {
                let bus = Bus::new(tech, n, self.flit_bits, self.link_length * f64::from(n));
                (None, None, Some(bus))
            }
            Topology::Crossbar { .. } => {
                // Each agent reaches the central switch over a spoke link.
                let spoke = Link::new(tech, self.flit_bits, self.link_length);
                (None, Some(spoke), None)
            }
        };
        let crossbar = if let Topology::Crossbar { n } = self.topology {
            let fabric = Crossbar::new(tech, n as usize, n as usize, self.flit_bits as usize);
            let arb = MatrixArbiter::new(tech, n as usize);
            Some(fabric.metrics_per_traversal().in_series(&arb.metrics()))
        } else {
            None
        };
        Ok(NocModel {
            config: *self,
            router,
            link,
            bus,
            crossbar,
        })
    }
}

/// Runtime traffic statistics for one interval.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct NocStats {
    /// Interval length, s.
    pub interval_s: f64,
    /// Flits injected into the network.
    pub flits: u64,
    /// Average hops per flit (defaults to the topology average if 0).
    pub avg_hops: f64,
}

/// A built network.
#[derive(Debug, Clone)]
pub struct NocModel {
    /// Configuration used.
    pub config: NocConfig,
    /// Router model (switched topologies).
    pub router: Option<Router>,
    /// Link model (switched topologies).
    pub link: Option<Link>,
    /// Bus model (bus topology).
    pub bus: Option<Bus>,
    /// Central-crossbar metrics per traversal (crossbar topology).
    pub crossbar: Option<CircuitMetrics>,
}

impl NocModel {
    /// Energy of moving one flit one hop (router + link), J.
    #[must_use]
    pub fn energy_per_flit_hop(&self) -> f64 {
        match (&self.router, &self.link, &self.bus, &self.crossbar) {
            (_, Some(l), _, Some(x)) => x.energy_per_op + 2.0 * l.energy_per_flit(),
            (Some(r), Some(l), _, _) => r.energy_per_flit() + l.energy_per_flit(),
            (_, _, Some(b), _) => b.energy_per_transfer(),
            (_, _, _, Some(x)) => x.energy_per_op,
            _ => 0.0,
        }
    }

    /// Total network area, m².
    #[must_use]
    pub fn area(&self) -> f64 {
        let t = self.config.topology;
        match (&self.router, &self.link, &self.bus, &self.crossbar) {
            (_, Some(l), _, Some(x)) => {
                let n = f64::from(match t {
                    Topology::Crossbar { n } => n,
                    _ => 0,
                });
                x.area + 2.0 * n * l.area()
            }
            (Some(r), Some(l), _, _) => {
                r.area() * f64::from(t.router_count()) + l.area() * f64::from(t.link_count())
            }
            (_, _, Some(b), _) => b.area(),
            (_, _, _, Some(x)) => x.area,
            _ => 0.0,
        }
    }

    /// Total network leakage, W.
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        let t = self.config.topology;
        match (&self.router, &self.link, &self.bus, &self.crossbar) {
            (_, Some(l), _, Some(x)) => {
                let n = f64::from(match t {
                    Topology::Crossbar { n } => n,
                    _ => 0,
                });
                x.leakage + l.leakage().scaled(2.0 * n)
            }
            (Some(r), Some(l), _, _) => {
                r.leakage().scaled(f64::from(t.router_count()))
                    + l.leakage().scaled(f64::from(t.link_count()))
            }
            (_, _, Some(b), _) => b.leakage(),
            (_, _, _, Some(x)) => x.leakage,
            _ => StaticPower::zero(),
        }
    }

    /// Runtime dynamic power for the given traffic, W.
    #[must_use]
    pub fn dynamic_power(&self, stats: &NocStats) -> f64 {
        if stats.interval_s <= 0.0 {
            return 0.0;
        }
        let hops = if stats.avg_hops > 0.0 {
            stats.avg_hops
        } else {
            self.config.topology.average_hops()
        };
        stats.flits as f64 * hops * self.energy_per_flit_hop() / stats.interval_s
    }

    /// Per-hop latency (router pipeline + wire flight), s.
    #[must_use]
    pub fn hop_latency(&self) -> f64 {
        match (&self.router, &self.link, &self.bus, &self.crossbar) {
            (_, Some(l), _, Some(x)) => x.delay + 2.0 * l.latency(),
            (Some(r), Some(l), _, _) => {
                r.cycle_time().max(1.0 / self.config.clock_hz) + l.latency()
            }
            (_, _, Some(b), _) => b.latency(),
            (_, _, _, Some(x)) => x.delay,
            _ => 0.0,
        }
    }

    /// Peak dynamic power with every router accepting one flit per cycle, W.
    #[must_use]
    pub fn peak_dynamic_power(&self) -> f64 {
        let agents = match self.config.topology {
            Topology::Bus { n } | Topology::Crossbar { n } => n,
            t => t.router_count(),
        };
        f64::from(agents) * self.energy_per_flit_hop() * self.config.clock_hz * 0.5
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N32, DeviceType::Hp, 360.0)
    }

    fn mesh(x: u32, y: u32) -> NocConfig {
        NocConfig {
            topology: Topology::Mesh { x, y },
            flit_bits: 128,
            vcs_per_port: 4,
            buffers_per_vc: 4,
            link_length: 1.5e-3,
            clock_hz: 2e9,
        }
    }

    #[test]
    fn mesh_counts_are_right() {
        let t = Topology::Mesh { x: 4, y: 4 };
        assert_eq!(t.router_count(), 16);
        assert_eq!(t.link_count(), 48);
    }

    #[test]
    fn bigger_meshes_cost_more() {
        let t = tech();
        let small = mesh(2, 2).build(&t).unwrap();
        let big = mesh(8, 8).build(&t).unwrap();
        assert!(big.area() > 10.0 * small.area());
        assert!(big.leakage().total() > 10.0 * small.leakage().total());
    }

    #[test]
    fn bus_beats_mesh_on_leakage_for_small_counts() {
        let t = tech();
        let bus = NocConfig {
            topology: Topology::Bus { n: 4 },
            ..mesh(2, 2)
        }
        .build(&t)
        .unwrap();
        let m = mesh(2, 2).build(&t).unwrap();
        // A bus has no per-router buffers/allocators, so it leaks far less
        // (its area advantage is marginal once wiring tracks are counted).
        assert!(bus.leakage().total() < m.leakage().total());
        assert!(bus.area() < 3.0 * m.area());
    }

    #[test]
    fn dynamic_power_scales_with_traffic() {
        let t = tech();
        let noc = mesh(4, 4).build(&t).unwrap();
        let low = NocStats {
            interval_s: 1e-3,
            flits: 1_000_000,
            avg_hops: 0.0,
        };
        let high = NocStats {
            interval_s: 1e-3,
            flits: 4_000_000,
            avg_hops: 0.0,
        };
        assert!((noc.dynamic_power(&high) / noc.dynamic_power(&low) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_interval_is_safe() {
        let t = tech();
        let noc = mesh(2, 2).build(&t).unwrap();
        assert_eq!(noc.dynamic_power(&NocStats::default()), 0.0);
    }

    #[test]
    fn crossbar_topology_builds_with_positive_costs() {
        let t = tech();
        let xbar = NocConfig {
            topology: Topology::Crossbar { n: 12 },
            ..mesh(2, 2)
        }
        .build(&t)
        .unwrap();
        assert!(xbar.energy_per_flit_hop() > 0.0);
        assert!(xbar.area() > 0.0);
        assert!(xbar.leakage().total() > 0.0);
        assert!(xbar.hop_latency() > 0.0);
        // A 12-agent crossbar is wire-dominated: bigger than a 4-agent bus.
        let bus = NocConfig {
            topology: Topology::Bus { n: 4 },
            ..mesh(2, 2)
        }
        .build(&t)
        .unwrap();
        assert!(xbar.area() > bus.area() * 0.1);
    }

    #[test]
    fn validate_accepts_sane_configs() {
        assert!(!mesh(4, 4).validate().has_errors());
        let bus = NocConfig {
            topology: Topology::Bus { n: 4 },
            ..mesh(2, 2)
        };
        assert!(!bus.validate().has_errors());
    }

    #[test]
    fn validate_collects_every_finding() {
        let cfg = NocConfig {
            topology: Topology::Mesh { x: 0, y: 2 },
            flit_bits: 0,
            vcs_per_port: 0,
            link_length: -1.0,
            ..mesh(2, 2)
        };
        let d = cfg.validate();
        assert!(d.error_count() >= 4, "wanted all findings, got: {d}");
        let paths: Vec<&str> = d.iter().map(|f| f.path.as_str()).collect();
        for p in [
            "topology",
            "router.flit_bits",
            "router.vcs_per_port",
            "link_length",
        ] {
            assert!(paths.contains(&p), "missing {p} in {paths:?}");
        }
    }

    #[test]
    fn hop_latency_includes_wire_flight() {
        let t = tech();
        let noc = mesh(4, 4).build(&t).unwrap();
        assert!(noc.hop_latency() > noc.link.as_ref().unwrap().latency());
    }
}
