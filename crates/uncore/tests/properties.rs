#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Property-based tests for the uncore models.

use mcpat_tech::{DeviceType, TechNode, TechParams};
use mcpat_uncore::clock::ClockNetwork;
use mcpat_uncore::io::OffChipIo;
use mcpat_uncore::memctrl::{MemCtrl, MemCtrlConfig, MemCtrlStats};
use mcpat_uncore::shared_cache::{SharedCacheConfig, SharedCacheStats};
use proptest::prelude::*;

fn tech() -> TechParams {
    TechParams::new(TechNode::N45, DeviceType::Hp, 360.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn shared_caches_build_for_any_reasonable_size(
        mb in 1u64..32,
        sharers in 0u32..16,
    ) {
        let sc = SharedCacheConfig::l2("p", mb * 1024 * 1024, sharers)
            .build(&tech())
            .unwrap();
        prop_assert!(sc.area() > 0.0);
        prop_assert!(sc.leakage().total() > 0.0);
        prop_assert_eq!(sc.directory.is_some(), sharers > 0);
    }

    #[test]
    fn cache_dynamic_power_is_additive_in_events(
        reads in 1u64..10_000_000,
        misses in 0u64..1_000_000,
    ) {
        let sc = SharedCacheConfig::l2("p", 2 * 1024 * 1024, 4)
            .build(&tech())
            .unwrap();
        let only_reads = SharedCacheStats { interval_s: 1e-3, reads, ..Default::default() };
        let only_misses = SharedCacheStats { interval_s: 1e-3, misses, ..Default::default() };
        let both = SharedCacheStats { interval_s: 1e-3, reads, misses, ..Default::default() };
        let sum = sc.dynamic_power(&only_reads) + sc.dynamic_power(&only_misses);
        prop_assert!((sc.dynamic_power(&both) - sum).abs() < 1e-9 * sum.max(1.0));
    }

    #[test]
    fn memctrl_power_monotone_in_traffic(gb in 1u64..64) {
        let mc = MemCtrl::build(&tech(), &MemCtrlConfig::default()).unwrap();
        let lo = MemCtrlStats { interval_s: 1.0, bytes_read: gb << 30, bytes_written: 0 };
        let hi = MemCtrlStats { interval_s: 1.0, bytes_read: (gb * 2) << 30, bytes_written: 0 };
        prop_assert!(mc.dynamic_power(&hi) > mc.dynamic_power(&lo));
    }

    #[test]
    fn clock_network_power_is_linear_in_sink_cap_increment(
        die_mm in 5.0..25.0f64,
        sink_nf in 0.1..5.0f64,
    ) {
        let t = tech();
        let edge = die_mm * 1e-3;
        let c1 = ClockNetwork::new(&t, edge, edge, 2e9, sink_nf * 1e-9);
        let c2 = ClockNetwork::new(&t, edge, edge, 2e9, 2.0 * sink_nf * 1e-9);
        // Adding sink cap adds power proportionally (wire cap constant).
        prop_assert!(c2.dynamic_power() > c1.dynamic_power());
        let added = c2.dynamic_power() - c1.dynamic_power();
        let expected = (1.0 + 0.4) * sink_nf * 1e-9 * t.device.vdd * t.device.vdd * 2e9;
        prop_assert!((added / expected - 1.0).abs() < 0.05, "added {added} expected {expected}");
    }

    #[test]
    fn io_power_between_standby_and_peak(bw_gbs in 1.0..100.0f64, u in 0.0..1.0f64) {
        let io = OffChipIo::new(&tech(), bw_gbs * 1e9);
        let p = io.power_at_utilization(u);
        prop_assert!(p >= io.standby_power - 1e-12);
        prop_assert!(p <= io.peak_power() + 1e-12);
    }

    #[test]
    fn utilization_is_clamped(bw_gbs in 1.0..50.0f64, u in -2.0..3.0f64) {
        let io = OffChipIo::new(&tech(), bw_gbs * 1e9);
        let p = io.power_at_utilization(u);
        prop_assert!(p.is_finite());
        prop_assert!(p <= io.peak_power() + 1e-12);
        prop_assert!(p >= io.standby_power - 1e-12);
    }
}
