//! # mcpat-uncore — shared caches, memory controllers, and clocking
//!
//! The uncore components McPAT models around the cores:
//!
//! * [`shared_cache`] — L2/L3 caches with their controllers (MSHRs,
//!   writeback/fill buffers, and an optional sharer directory);
//! * [`memctrl`] — integrated memory controllers: transaction queues,
//!   scheduling logic, and the off-chip PHY;
//! * [`io`] — other off-chip interfaces (SerDes-style ports), needed for
//!   whole-chip validation against published TDP breakdowns;
//! * [`clock`] — the chip-level clock distribution network (H-tree +
//!   local grid), one of the largest single consumers at older nodes.
//!
//! ```
//! use mcpat_uncore::clock::ClockNetwork;
//! use mcpat_tech::{TechNode, DeviceType, TechParams};
//!
//! let tech = TechParams::new(TechNode::N90, DeviceType::Hp, 360.0);
//! // A 300 mm² chip clocked at 1.2 GHz.
//! let clk = ClockNetwork::new(&tech, 17.3e-3, 17.3e-3, 1.2e9, 2.0e-9);
//! assert!(clk.dynamic_power() > 1.0); // several watts
//! ```

pub mod clock;
pub mod io;
pub mod memctrl;
pub mod shared_cache;

pub use clock::ClockNetwork;
pub use io::OffChipIo;
pub use memctrl::{MemCtrl, MemCtrlConfig, MemCtrlStats};
pub use shared_cache::{SharedCache, SharedCacheConfig, SharedCacheStats};
