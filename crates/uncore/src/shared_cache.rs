//! Shared (L2/L3) caches with their controllers.

use mcpat_array::cache::{AccessMode, CacheArray, CacheSpec};
use mcpat_array::{ArrayError, ArraySpec, OptTarget, Ports, SolvedArray};
use mcpat_circuit::metrics::StaticPower;
use mcpat_tech::TechParams;

/// Configuration of a shared cache.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SharedCacheConfig {
    /// Underlying cache geometry.
    pub cache: CacheSpec,
    /// Miss-status holding registers (outstanding misses).
    pub mshr_entries: u32,
    /// Writeback buffer entries.
    pub wb_buffer_entries: u32,
    /// Fill buffer entries.
    pub fill_buffer_entries: u32,
    /// Cores whose sharing state the directory tracks
    /// (0 disables the directory).
    pub directory_sharers: u32,
}

impl SharedCacheConfig {
    /// A sensible L2 configuration of the given capacity shared by
    /// `sharers` cores.
    #[must_use]
    pub fn l2(name: &str, capacity: u64, sharers: u32) -> SharedCacheConfig {
        SharedCacheConfig {
            cache: CacheSpec::new(name, capacity, 64, 8).with_access_mode(AccessMode::Sequential),
            mshr_entries: 16,
            wb_buffer_entries: 8,
            fill_buffer_entries: 8,
            directory_sharers: sharers,
        }
    }

    /// Reports every configuration problem into `diags`, with field
    /// paths rooted under `path`.
    pub fn validate_into(&self, path: &str, diags: &mut mcpat_diag::Diagnostics) {
        self.cache.validate_into(path, diags);
        let at = |field: &str| mcpat_diag::join_path(path, field);
        if self.mshr_entries == 0 {
            diags.warning(
                at("mshr_entries"),
                "no MSHRs configured; modeling a single blocking miss register",
            );
        }
        if self.wb_buffer_entries == 0 {
            diags.warning(
                at("wb_buffer_entries"),
                "no writeback buffer configured; modeling a single-entry buffer",
            );
        }
        if self.fill_buffer_entries == 0 {
            diags.warning(
                at("fill_buffer_entries"),
                "no fill buffer configured; modeling a single-entry buffer",
            );
        }
        if self.directory_sharers > 1024 {
            diags.error(
                at("directory_sharers"),
                format!(
                    "directory tracking {} sharers is outside the modeled range (<= 1024)",
                    self.directory_sharers
                ),
            );
        }
    }

    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Propagates [`ArrayError`].
    pub fn build(&self, tech: &TechParams) -> Result<SharedCache, ArrayError> {
        let addr_bits = self.cache.paddr_bits;
        let line_bits = self.cache.block_bytes * 8;
        let q_ports = Ports {
            rw: 0,
            read: 1,
            write: 1,
            search: 1,
        };

        // The big tag+data solve dominates; the controller's small
        // arrays (MSHR, buffers, directory) run alongside it.
        let (cache, small) = mcpat_par::join2(
            || self.cache.solve(tech, OptTarget::EnergyDelay),
            || -> Result<_, ArrayError> {
                let mshr = ArraySpec::cam(
                    u64::from(self.mshr_entries.max(1)),
                    addr_bits + 16,
                    addr_bits.saturating_sub(6),
                )
                .with_ports(q_ports)
                .named(format!("{}-mshr", self.cache.name))
                .solve(tech, OptTarget::EnergyDelay)?;

                let wb_buffer =
                    ArraySpec::table(u64::from(self.wb_buffer_entries.max(1)), line_bits)
                        .named(format!("{}-wb", self.cache.name))
                        .solve(tech, OptTarget::EnergyDelay)?;
                let fill_buffer =
                    ArraySpec::table(u64::from(self.fill_buffer_entries.max(1)), line_bits)
                        .named(format!("{}-fill", self.cache.name))
                        .solve(tech, OptTarget::EnergyDelay)?;

                let directory = if self.directory_sharers > 0 {
                    // One sharer bit-vector entry per cache line.
                    let lines = self.cache.capacity / u64::from(self.cache.block_bytes);
                    Some(
                        ArraySpec::table(lines.max(2), self.directory_sharers + 2)
                            .named(format!("{}-dir", self.cache.name))
                            .solve(tech, OptTarget::Energy)?,
                    )
                } else {
                    None
                };
                Ok((mshr, wb_buffer, fill_buffer, directory))
            },
        )
        .map_err(|e| ArrayError::Worker {
            name: self.cache.name.clone(),
            detail: e.to_string(),
        })?;
        let cache = cache?;
        let (mshr, wb_buffer, fill_buffer, directory) = small?;

        Ok(SharedCache {
            config: self.clone(),
            cache,
            mshr,
            wb_buffer,
            fill_buffer,
            directory,
        })
    }
}

/// Runtime event counts for one interval.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct SharedCacheStats {
    /// Interval length, s.
    pub interval_s: f64,
    /// Read accesses reaching this cache.
    pub reads: u64,
    /// Write/update accesses.
    pub writes: u64,
    /// Misses (allocate an MSHR, later fill).
    pub misses: u64,
    /// Writebacks of dirty lines.
    pub writebacks: u64,
    /// Coherence probes (directory lookups on behalf of other caches).
    #[serde(default)]
    pub snoops: u64,
}

/// A built shared cache.
#[derive(Debug, Clone)]
pub struct SharedCache {
    /// Configuration echoed.
    pub config: SharedCacheConfig,
    /// The tag+data arrays.
    pub cache: CacheArray,
    /// MSHR CAM.
    pub mshr: SolvedArray,
    /// Writeback buffer.
    pub wb_buffer: SolvedArray,
    /// Fill buffer.
    pub fill_buffer: SolvedArray,
    /// Sharer directory, if configured.
    pub directory: Option<SolvedArray>,
}

impl SharedCache {
    /// Warning diagnostics from every internal array the solver could
    /// only place by relaxing its constraints.
    #[must_use]
    pub fn relaxation_warnings(&self) -> mcpat_diag::Diagnostics {
        let mut arrays: Vec<&SolvedArray> = vec![
            &self.cache.data,
            &self.cache.tag,
            &self.mshr,
            &self.wb_buffer,
            &self.fill_buffer,
        ];
        arrays.extend(&self.directory);
        arrays
            .iter()
            .filter_map(|a| a.relaxation_warning())
            .collect()
    }

    /// Total area, m².
    #[must_use]
    pub fn area(&self) -> f64 {
        self.cache.area
            + self.mshr.area
            + self.wb_buffer.area
            + self.fill_buffer.area
            + self.directory.as_ref().map_or(0.0, |d| d.area)
    }

    /// Total leakage, W.
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        let mut l = self.cache.leakage
            + self.mshr.leakage
            + self.wb_buffer.leakage
            + self.fill_buffer.leakage;
        if let Some(d) = &self.directory {
            l += d.leakage;
        }
        l
    }

    /// Runtime dynamic power, W.
    #[must_use]
    pub fn dynamic_power(&self, stats: &SharedCacheStats) -> f64 {
        if stats.interval_s <= 0.0 {
            return 0.0;
        }
        let dir_e = self.directory.as_ref().map_or(0.0, |d| d.read_energy);
        let read_e = self.cache.read_hit_energy + dir_e;
        let write_e = self.cache.write_hit_energy + dir_e;
        let miss_e = self.cache.miss_energy
            + self.mshr.search_energy
            + self.mshr.write_energy
            + self.fill_buffer.write_energy
            + self.fill_buffer.read_energy
            + self.cache.fill_energy;
        let wb_e = self.wb_buffer.write_energy + self.wb_buffer.read_energy;
        // Coherence probes hit the directory (or, without one, the tag
        // array) but not the data array.
        let snoop_e = self
            .directory
            .as_ref()
            .map_or(self.cache.miss_energy, |d| d.read_energy);
        let total = stats.reads as f64 * read_e
            + stats.writes as f64 * write_e
            + stats.misses as f64 * miss_e
            + stats.writebacks as f64 * wb_e
            + stats.snoops as f64 * snoop_e;
        total / stats.interval_s
    }

    /// Peak dynamic power at one access per `cycle_s`, W.
    #[must_use]
    pub fn peak_dynamic_power(&self, cycle_s: f64) -> f64 {
        self.cache.read_hit_energy / cycle_s.max(1e-12)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N65, DeviceType::Hp, 360.0)
    }

    #[test]
    fn l2_builds_with_controller() {
        let sc = SharedCacheConfig::l2("l2", 2 * 1024 * 1024, 8)
            .build(&tech())
            .unwrap();
        assert!(sc.directory.is_some());
        assert!(sc.area() > sc.cache.area);
        assert!(sc.leakage().total() > 0.0);
    }

    #[test]
    fn cache_array_dominates_area() {
        let sc = SharedCacheConfig::l2("l2", 4 * 1024 * 1024, 4)
            .build(&tech())
            .unwrap();
        assert!(sc.cache.area > 0.8 * sc.area());
    }

    #[test]
    fn dynamic_power_counts_miss_path() {
        let sc = SharedCacheConfig::l2("l2", 1024 * 1024, 2)
            .build(&tech())
            .unwrap();
        let hit_only = SharedCacheStats {
            interval_s: 1e-3,
            reads: 1_000_000,
            ..Default::default()
        };
        let with_misses = SharedCacheStats {
            misses: 500_000,
            ..hit_only
        };
        assert!(sc.dynamic_power(&with_misses) > sc.dynamic_power(&hit_only));
    }

    #[test]
    fn snoops_cost_directory_energy() {
        let sc = SharedCacheConfig::l2("l2", 1024 * 1024, 8)
            .build(&tech())
            .unwrap();
        let quiet = SharedCacheStats {
            interval_s: 1e-3,
            reads: 100_000,
            ..Default::default()
        };
        let snooped = SharedCacheStats {
            snoops: 500_000,
            ..quiet
        };
        assert!(sc.dynamic_power(&snooped) > sc.dynamic_power(&quiet));
    }

    #[test]
    fn no_directory_when_unshared() {
        let mut cfg = SharedCacheConfig::l2("l2", 512 * 1024, 0);
        cfg.directory_sharers = 0;
        let sc = cfg.build(&tech()).unwrap();
        assert!(sc.directory.is_none());
    }

    #[test]
    fn megabyte_l2_leakage_is_plausible_at_65nm() {
        // Published 65 nm chips leak a few watts in multi-MB L2s.
        let sc = SharedCacheConfig::l2("l2", 4 * 1024 * 1024, 8)
            .build(&tech())
            .unwrap();
        let w = sc.leakage().total();
        assert!(w > 0.2 && w < 20.0, "leak = {w}");
    }
}
