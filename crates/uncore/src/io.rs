//! Generic off-chip I/O interfaces (SerDes-style ports).
//!
//! Whole-chip validation targets publish an "I/O" power bucket covering
//! DRAM pins, coherence links, PCIe-class ports and miscellaneous pads.
//! McPAT treats these empirically: power is proportional to provisioned
//! bandwidth with a standby floor.

use mcpat_circuit::metrics::StaticPower;
use mcpat_tech::TechParams;

/// An off-chip interface block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffChipIo {
    /// Provisioned bandwidth (both directions), bytes/s.
    pub bandwidth: f64,
    /// Energy per transferred bit, J.
    pub energy_per_bit: f64,
    /// Standby (bias/clocking) power, W.
    pub standby_power: f64,
    /// Pad + SerDes area, m².
    pub area: f64,
}

/// SerDes energy per bit at 90 nm (≈15 mW/Gbps).
const IO_ENERGY_PER_BIT_90NM: f64 = 25e-12;

impl OffChipIo {
    /// Builds an interface provisioned for `bandwidth` bytes/s.
    #[must_use]
    pub fn new(tech: &TechParams, bandwidth: f64) -> OffChipIo {
        // Degenerate bandwidths clamp to zero so every derived figure
        // stays finite; validation reports them separately.
        let bandwidth = if bandwidth.is_finite() {
            bandwidth.max(0.0)
        } else {
            0.0
        };
        let scale = tech.node.scale_from_90nm();
        let gbps = bandwidth / 1e9 * 8.0;
        OffChipIo {
            bandwidth,
            energy_per_bit: IO_ENERGY_PER_BIT_90NM * (0.3 + 0.7 * scale),
            standby_power: 0.035 * gbps * (0.3 + 0.7 * scale),
            area: 0.12e-6 * gbps * scale, // 0.12 mm² per Gbps at 90 nm
        }
    }

    /// Power at a given utilization of the provisioned bandwidth, W.
    #[must_use]
    pub fn power_at_utilization(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.standby_power + u * self.energy_per_bit * self.bandwidth * 8.0
    }

    /// Peak power (fully utilized), W.
    #[must_use]
    pub fn peak_power(&self) -> f64 {
        self.power_at_utilization(1.0)
    }

    /// Standby contribution expressed as leakage for aggregation, W.
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        StaticPower::new(self.standby_power, 0.0)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    #[test]
    fn io_power_scales_with_bandwidth_and_utilization() {
        let t = TechParams::new(TechNode::N90, DeviceType::Hp, 360.0);
        let small = OffChipIo::new(&t, 5e9);
        let big = OffChipIo::new(&t, 20e9);
        assert!(big.peak_power() > 3.0 * small.peak_power());
        assert!(small.power_at_utilization(0.5) < small.peak_power());
        assert!(small.power_at_utilization(0.0) >= small.standby_power);
    }

    #[test]
    fn niagara_class_io_is_around_ten_watts() {
        // Niagara provisioned ≈25 GB/s of DRAM + misc I/O and published
        // ≈13 W for the bucket.
        let t = TechParams::new(TechNode::N90, DeviceType::Hp, 360.0);
        let io = OffChipIo::new(&t, 25e9);
        let p = io.peak_power();
        assert!(p > 3.0 && p < 30.0, "{p} W");
    }
}
