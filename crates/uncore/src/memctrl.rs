//! Integrated memory controller: front-end transaction queues and
//! scheduling, back-end engine, and the off-chip PHY.
//!
//! Queue structures are analytical (array models); the PHY is empirical,
//! parameterized by bandwidth, in line with McPAT's treatment.

use mcpat_array::{ArrayError, ArraySpec, OptTarget, Ports, SolvedArray};
use mcpat_circuit::metrics::StaticPower;
use mcpat_tech::TechParams;

/// Memory controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MemCtrlConfig {
    /// Independent channels.
    pub channels: u32,
    /// Data bus width per channel, bits.
    pub bus_bits: u32,
    /// Peak bandwidth per channel, bytes/s.
    pub peak_bw_per_channel: f64,
    /// Read queue depth per channel.
    pub read_queue_depth: u32,
    /// Write queue depth per channel.
    pub write_queue_depth: u32,
    /// Physical address bits.
    pub paddr_bits: u32,
    /// Override for the per-channel PHY standby power, W
    /// (`None` = the default DDR-class value; FB-DIMM-class serial
    /// interfaces burn much more).
    #[serde(default)]
    pub phy_standby_override_w: Option<f64>,
}

impl Default for MemCtrlConfig {
    fn default() -> MemCtrlConfig {
        MemCtrlConfig {
            channels: 2,
            bus_bits: 64,
            peak_bw_per_channel: 6.4e9,
            read_queue_depth: 32,
            write_queue_depth: 32,
            paddr_bits: 40,
            phy_standby_override_w: None,
        }
    }
}

/// Runtime traffic for one interval.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct MemCtrlStats {
    /// Interval length, s.
    pub interval_s: f64,
    /// Bytes read from DRAM.
    pub bytes_read: u64,
    /// Bytes written to DRAM.
    pub bytes_written: u64,
}

/// PHY + pad energy per off-chip bit at 90 nm, J/bit
/// (≈20 mW/Gbps, split between controller-side and I/O).
const PHY_ENERGY_PER_BIT_90NM: f64 = 40e-12;

/// Scheduler random-logic energy per transaction relative to one queue
/// access.
const SCHEDULER_FACTOR: f64 = 2.0;

/// A built memory controller.
#[derive(Debug, Clone)]
pub struct MemCtrl {
    /// Configuration echoed.
    pub config: MemCtrlConfig,
    /// Per-channel read transaction queue.
    pub read_queue: SolvedArray,
    /// Per-channel write transaction queue.
    pub write_queue: SolvedArray,
    /// PHY energy per transferred bit, J.
    pub phy_energy_per_bit: f64,
    /// PHY standby power per channel, W.
    pub phy_standby_per_channel: f64,
    /// PHY + pad area per channel, m².
    pub phy_area_per_channel: f64,
}

impl MemCtrlConfig {
    /// Reports every configuration problem into `diags`, with field
    /// paths rooted under `path`.
    pub fn validate_into(&self, path: &str, diags: &mut mcpat_diag::Diagnostics) {
        let at = |field: &str| mcpat_diag::join_path(path, field);
        if self.channels == 0 {
            diags.error(
                at("channels"),
                "memory controller needs at least one channel",
            );
        }
        if self.bus_bits == 0 {
            diags.error(at("bus_bits"), "data bus must be at least one bit wide");
        }
        diags.require_positive(
            at("peak_bw_per_channel"),
            "per-channel bandwidth",
            self.peak_bw_per_channel,
        );
        if self.read_queue_depth == 0 || self.write_queue_depth == 0 {
            diags.warning(
                at("read_queue_depth"),
                "zero-depth transaction queues are modeled as single registers",
            );
        }
        if self.paddr_bits == 0 || self.paddr_bits > 64 {
            diags.error(
                at("paddr_bits"),
                format!(
                    "physical address width {} must be in 1..=64",
                    self.paddr_bits
                ),
            );
        }
        if let Some(w) = self.phy_standby_override_w {
            diags.require_nonnegative(at("phy_standby_override_w"), "PHY standby power", w);
        }
    }
}

impl MemCtrl {
    /// Warning diagnostics from the queue arrays the solver could only
    /// place by relaxing its constraints.
    #[must_use]
    pub fn relaxation_warnings(&self) -> mcpat_diag::Diagnostics {
        [&self.read_queue, &self.write_queue]
            .iter()
            .filter_map(|a| a.relaxation_warning())
            .collect()
    }

    /// Builds the memory controller.
    ///
    /// # Errors
    ///
    /// Propagates [`ArrayError`] from the queue arrays.
    pub fn build(tech: &TechParams, config: &MemCtrlConfig) -> Result<MemCtrl, ArrayError> {
        // A queue entry holds address + a line of data + control.
        let entry_bits = config.paddr_bits + 512 + 16;
        let ports = Ports {
            rw: 0,
            read: 1,
            write: 1,
            search: 0,
        };
        let read_queue = ArraySpec::table(u64::from(config.read_queue_depth.max(1)), entry_bits)
            .with_ports(ports)
            .named("mc-read-queue")
            .solve(tech, OptTarget::EnergyDelay)?;
        let write_queue = ArraySpec::table(u64::from(config.write_queue_depth.max(1)), entry_bits)
            .with_ports(ports)
            .named("mc-write-queue")
            .solve(tech, OptTarget::EnergyDelay)?;

        let scale = tech.node.scale_from_90nm();
        // PHY energy improves roughly linearly with scaling; standby and
        // area are per-channel empirical values calibrated at 90 nm.
        let phy_energy_per_bit = PHY_ENERGY_PER_BIT_90NM * (0.3 + 0.7 * scale);
        let phy_standby_per_channel = config
            .phy_standby_override_w
            .unwrap_or(0.6 * (0.3 + 0.7 * scale));
        let phy_area_per_channel = 6.0e-6 * scale; // 6 mm² at 90 nm

        Ok(MemCtrl {
            config: *config,
            read_queue,
            write_queue,
            phy_energy_per_bit,
            phy_standby_per_channel,
            phy_area_per_channel,
        })
    }

    /// Total controller area, m².
    #[must_use]
    pub fn area(&self) -> f64 {
        let ch = f64::from(self.config.channels);
        (self.read_queue.area + self.write_queue.area + self.phy_area_per_channel) * ch
    }

    /// Total leakage + PHY standby, W.
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        let ch = f64::from(self.config.channels);
        (self.read_queue.leakage + self.write_queue.leakage).scaled(ch)
            + StaticPower::new(self.phy_standby_per_channel * ch, 0.0)
    }

    /// Runtime dynamic power, W.
    #[must_use]
    pub fn dynamic_power(&self, stats: &MemCtrlStats) -> f64 {
        if stats.interval_s <= 0.0 {
            return 0.0;
        }
        let line_bytes = 64.0;
        let reads = stats.bytes_read as f64 / line_bytes;
        let writes = stats.bytes_written as f64 / line_bytes;
        let queue_e = reads
            * (self.read_queue.write_energy + self.read_queue.read_energy)
            * (1.0 + SCHEDULER_FACTOR)
            + writes
                * (self.write_queue.write_energy + self.write_queue.read_energy)
                * (1.0 + SCHEDULER_FACTOR);
        let bits = (stats.bytes_read + stats.bytes_written) as f64 * 8.0;
        (queue_e + bits * self.phy_energy_per_bit) / stats.interval_s
    }

    /// Peak dynamic power with every channel saturated, W.
    #[must_use]
    pub fn peak_dynamic_power(&self) -> f64 {
        let ch = f64::from(self.config.channels);
        let bytes = self.config.peak_bw_per_channel * ch;
        self.dynamic_power(&MemCtrlStats {
            interval_s: 1.0,
            bytes_read: (bytes * 0.6) as u64,
            bytes_written: (bytes * 0.4) as u64,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N65, DeviceType::Hp, 360.0)
    }

    #[test]
    fn memctrl_builds_with_positive_costs() {
        let mc = MemCtrl::build(&tech(), &MemCtrlConfig::default()).unwrap();
        assert!(mc.area() > 0.0);
        assert!(mc.leakage().total() > 0.0);
        assert!(mc.peak_dynamic_power() > 0.1);
    }

    #[test]
    fn saturated_channel_burns_watts() {
        // 6.4 GB/s × 2 channels at ~20 pJ/bit ≈ 2 W of PHY power.
        let mc = MemCtrl::build(&tech(), &MemCtrlConfig::default()).unwrap();
        let p = mc.peak_dynamic_power();
        assert!(p > 0.5 && p < 20.0, "{p} W");
    }

    #[test]
    fn dynamic_power_is_linear_in_traffic() {
        let mc = MemCtrl::build(&tech(), &MemCtrlConfig::default()).unwrap();
        let s1 = MemCtrlStats {
            interval_s: 1.0,
            bytes_read: 1 << 30,
            bytes_written: 0,
        };
        let s2 = MemCtrlStats {
            interval_s: 1.0,
            bytes_read: 2 << 30,
            bytes_written: 0,
        };
        let r = mc.dynamic_power(&s2) / mc.dynamic_power(&s1);
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn more_channels_cost_more_standby() {
        let t = tech();
        let two = MemCtrl::build(
            &t,
            &MemCtrlConfig {
                channels: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let four = MemCtrl::build(
            &t,
            &MemCtrlConfig {
                channels: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(four.leakage().total() > two.leakage().total());
        assert!(four.area() > two.area());
    }
}
