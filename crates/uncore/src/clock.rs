//! Chip-level clock distribution: a global H-tree feeding a local grid.
//!
//! At the 180–90 nm nodes the clock network is one of the largest single
//! power consumers (the Alpha 21364 published ≈30% of chip power in
//! clocking); McPAT models it as wire capacitance (tree + grid) plus
//! distributed drivers, switched every cycle at full activity.

use mcpat_circuit::gate::{GateKind, LogicGate};
use mcpat_circuit::metrics::StaticPower;
use mcpat_tech::{TechParams, WireType};

/// Local clock-grid wire pitch, m.
const GRID_PITCH: f64 = 30e-6;

/// Driver capacitance overhead on top of raw wire load.
const DRIVER_OVERHEAD: f64 = 0.4;

/// The clock distribution network of a die.
#[derive(Debug, Clone, Copy)]
pub struct ClockNetwork {
    /// Die width, m.
    pub die_width: f64,
    /// Die height, m.
    pub die_h: f64,
    /// Clock frequency, Hz.
    pub clock_hz: f64,
    /// Total switched capacitance per cycle (wire + drivers + sinks), F.
    pub total_cap: f64,
    /// Supply voltage, V.
    vdd: f64,
    /// Driver leakage, W.
    driver_leakage: StaticPower,
    /// Driver area, m².
    driver_area: f64,
}

impl ClockNetwork {
    /// Builds the network for a `die_width × die_h` die at `clock_hz`, with
    /// `sink_cap` farads of latch/array clock-pin load to drive.
    #[must_use]
    pub fn new(
        tech: &TechParams,
        die_width: f64,
        die_h: f64,
        clock_hz: f64,
        sink_cap: f64,
    ) -> ClockNetwork {
        let area = die_width * die_h;
        let global = tech.wire(WireType::Global);
        let inter = tech.wire(WireType::Intermediate);

        // H-tree: total length ≈ 3× the die half-perimeter per level
        // folded into ~2× diagonal span; grid: two orthogonal wire sets at
        // GRID_PITCH over the whole die.
        let htree_len = 3.0 * (die_width + die_h);
        let grid_len = 2.0 * area / GRID_PITCH;
        let wire_cap = htree_len * global.c_per_m + grid_len * inter.c_per_m;
        let total_cap = (wire_cap + sink_cap) * (1.0 + DRIVER_OVERHEAD);

        // Drivers sized to deliver the cap each cycle: estimate the
        // aggregate driver width from the cap they switch.
        let drive_per_width = tech.gate_cap(1.0) * 40.0; // each unit width drives ~40 gate-cap units
        let total_driver_width = total_cap / drive_per_width.max(1e-30);
        let driver_leakage = StaticPower {
            subthreshold: tech
                .subthreshold_leakage(total_driver_width / 3.0, 2.0 * total_driver_width / 3.0),
            gate: tech.gate_leakage(total_driver_width / 3.0, 2.0 * total_driver_width / 3.0),
        };
        let inv = LogicGate::new(tech, GateKind::Inverter, 1.0);
        let driver_area = inv.area() * total_driver_width / (3.0 * tech.min_w_nmos());

        ClockNetwork {
            die_width,
            die_h,
            clock_hz,
            total_cap,
            vdd: tech.device.vdd,
            driver_leakage,
            driver_area,
        }
    }

    /// Dynamic power of the network (α = 1: the clock switches twice per
    /// cycle, giving `C·V²·f`), W.
    #[must_use]
    pub fn dynamic_power(&self) -> f64 {
        self.total_cap * self.vdd * self.vdd * self.clock_hz
    }

    /// Dynamic power with a fraction of the grid clock-gated off, W.
    #[must_use]
    pub fn dynamic_power_gated(&self, gated_fraction: f64) -> f64 {
        self.dynamic_power() * (1.0 - 0.9 * gated_fraction.clamp(0.0, 1.0))
    }

    /// Driver leakage, W.
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        self.driver_leakage
    }

    /// Driver area, m².
    #[must_use]
    pub fn area(&self) -> f64 {
        self.driver_area
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    #[test]
    fn clock_power_is_watts_scale_for_big_dies() {
        let t = TechParams::new(TechNode::N90, DeviceType::Hp, 360.0);
        // 340 mm² die at 1.2 GHz with 2 nF of sink load (Niagara class).
        let clk = ClockNetwork::new(&t, 18.5e-3, 18.5e-3, 1.2e9, 2e-9);
        let p = clk.dynamic_power();
        assert!(p > 1.0 && p < 40.0, "{p} W");
    }

    #[test]
    fn power_scales_linearly_with_frequency() {
        let t = TechParams::new(TechNode::N65, DeviceType::Hp, 360.0);
        let slow = ClockNetwork::new(&t, 10e-3, 10e-3, 1e9, 1e-9);
        let fast = ClockNetwork::new(&t, 10e-3, 10e-3, 3e9, 1e-9);
        assert!((fast.dynamic_power() / slow.dynamic_power() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn gating_cuts_up_to_90_percent() {
        let t = TechParams::new(TechNode::N45, DeviceType::Hp, 360.0);
        let clk = ClockNetwork::new(&t, 12e-3, 12e-3, 2e9, 1e-9);
        assert!((clk.dynamic_power_gated(1.0) / clk.dynamic_power() - 0.1).abs() < 1e-9);
        assert_eq!(clk.dynamic_power_gated(0.0), clk.dynamic_power());
    }

    #[test]
    fn bigger_dies_need_more_clock_power() {
        let t = TechParams::new(TechNode::N45, DeviceType::Hp, 360.0);
        let small = ClockNetwork::new(&t, 8e-3, 8e-3, 2e9, 1e-9);
        let big = ClockNetwork::new(&t, 20e-3, 20e-3, 2e9, 1e-9);
        assert!(big.dynamic_power() > 2.0 * small.dynamic_power());
    }
}
