//! The single place in the workspace that reads process environment
//! variables.
//!
//! Every runtime knob the modeling stack honors is declared here, with
//! its variable name, parse rule, and default, so that `mcpat-lint`'s
//! L003 rule can enforce "no `std::env` reads outside the knobs
//! module" and a reader can answer "what does the environment change?"
//! from one file.
//!
//! This module lives in `mcpat-par` because that is the lowest crate in
//! the dependency graph that needs a knob (the worker count); the
//! umbrella `mcpat` crate re-exports it as `mcpat::knobs`.
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `MCPAT_THREADS` | worker count for every fan-out | detected parallelism |
//! | `MCPAT_SOLVE_CACHE` | `0` disables the array solve cache | enabled |
//! | `MCPAT_SOLVE_CACHE_CAP` | solve-cache entry cap (`0` = unbounded) | 4096 |
//! | `MCPAT_SERVE_MAX_INFLIGHT` | serve daemon admission cap (`0` = unbounded) | 64 |
//! | `MCPAT_SERVE_EVAL_HOLD_MS` | serve daemon sleeps this long before each uncoalesced build | 0 |
//!
//! In-process overrides ([`crate::set_thread_override`],
//! `mcpat_array::memo::set_enabled`) take precedence over both
//! variables; tests and benchmarks should use those instead of mutating
//! the process environment.

/// Environment variable naming the worker count for every fan-out.
pub const THREADS_VAR: &str = "MCPAT_THREADS";

/// Environment variable that disables the array solve cache when set
/// to `0`.
pub const SOLVE_CACHE_VAR: &str = "MCPAT_SOLVE_CACHE";

/// Environment variable capping the array solve cache's total entry
/// count (CLOCK eviction beyond the cap; `0` disables the cap).
pub const SOLVE_CACHE_CAP_VAR: &str = "MCPAT_SOLVE_CACHE_CAP";

/// Default solve-cache entry cap when `MCPAT_SOLVE_CACHE_CAP` is unset:
/// far above any single build's working set (a chip build solves a few
/// dozen distinct geometries) yet bounded, so a long-running process
/// sweeping millions of configs cannot grow without limit.
pub const SOLVE_CACHE_CAP_DEFAULT: usize = 4096;

/// The `MCPAT_THREADS` knob: `Some(n)` when the variable is set to a
/// positive integer, `None` when unset or unparseable (callers fall
/// back to the machine's detected parallelism).
#[must_use]
pub fn threads() -> Option<usize> {
    std::env::var(THREADS_VAR)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The `MCPAT_SOLVE_CACHE` knob: `false` only when the variable is set
/// to `0` (after trimming); any other state — unset, empty, `1`,
/// garbage — leaves the cache enabled.
#[must_use]
pub fn solve_cache() -> bool {
    std::env::var(SOLVE_CACHE_VAR).map_or(true, |v| v.trim() != "0")
}

/// The `MCPAT_SOLVE_CACHE_CAP` knob: the solve cache's total entry cap.
/// Unset or unparseable falls back to [`SOLVE_CACHE_CAP_DEFAULT`]; an
/// explicit `0` disables the cap (unbounded cache).
#[must_use]
pub fn solve_cache_cap() -> usize {
    std::env::var(SOLVE_CACHE_CAP_VAR)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(SOLVE_CACHE_CAP_DEFAULT)
}

/// Environment variable naming the serve daemon's default admission
/// cap (concurrently admitted `evaluate` requests; `0` = unbounded).
/// The `mcpat serve --max-inflight` flag overrides it per invocation.
pub const SERVE_MAX_INFLIGHT_VAR: &str = "MCPAT_SERVE_MAX_INFLIGHT";

/// Default serve admission cap when `MCPAT_SERVE_MAX_INFLIGHT` is
/// unset: far above a workstation's parallelism so legitimate bursts
/// pass, yet bounded, so a runaway client sees a typed `Overloaded`
/// instead of piling unbounded work onto the pool.
pub const SERVE_MAX_INFLIGHT_DEFAULT: usize = 64;

/// The `MCPAT_SERVE_MAX_INFLIGHT` knob: the serve daemon's default
/// admission cap. Unset or unparseable falls back to
/// [`SERVE_MAX_INFLIGHT_DEFAULT`]; an explicit `0` disables the cap.
#[must_use]
pub fn serve_max_inflight() -> usize {
    std::env::var(SERVE_MAX_INFLIGHT_VAR)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(SERVE_MAX_INFLIGHT_DEFAULT)
}

/// Environment variable making the serve daemon sleep this many
/// milliseconds before every uncoalesced build. A smoke-test hook: the
/// sleep pins a request in flight long enough for concurrent clients to
/// provably contend with it (admission rejections, coalescing), without
/// depending on how fast the host builds. `0`/unset disables the hold.
pub const SERVE_EVAL_HOLD_MS_VAR: &str = "MCPAT_SERVE_EVAL_HOLD_MS";

/// The `MCPAT_SERVE_EVAL_HOLD_MS` knob: milliseconds the serve daemon
/// holds before each uncoalesced build. Unset or unparseable means no
/// hold.
#[must_use]
pub fn serve_eval_hold_ms() -> u64 {
    std::env::var(SERVE_EVAL_HOLD_MS_VAR)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    #[test]
    fn defaults_hold_when_unset() {
        // The test environment does not set either variable; the knob
        // functions must fall back to their documented defaults. (Tests
        // must not mutate the process environment — other tests in this
        // binary run concurrently and read it.)
        if std::env::var(super::THREADS_VAR).is_err() {
            assert_eq!(super::threads(), None);
        }
        if std::env::var(super::SOLVE_CACHE_VAR).is_err() {
            assert!(super::solve_cache());
        }
        if std::env::var(super::SOLVE_CACHE_CAP_VAR).is_err() {
            assert_eq!(super::solve_cache_cap(), super::SOLVE_CACHE_CAP_DEFAULT);
        }
    }
}
