//! # mcpat-par — scoped-thread fan-out for the modeling stack
//!
//! The modeling layers are trivially parallel at three levels (array
//! partition sweeps, per-unit core builds, per-candidate chip builds),
//! but the build environment vendors every dependency, so this crate
//! provides the minimal primitives instead of rayon: [`par_map`] over a
//! fixed worker count plus heterogeneous joins ([`join2`] … [`join6`]),
//! all built on [`std::thread::scope`].
//!
//! Three properties every helper guarantees:
//!
//! * **Determinism** — results come back in input order; callers that
//!   reduce must use an order-independent (totally ordered) merge, and
//!   then serial and parallel execution are bit-identical.
//! * **Panic containment** — a panicking worker never unwinds across
//!   the scope (which would poison shared state or abort): every closure
//!   runs under `catch_unwind` and a panic surfaces as a typed
//!   [`ParError`] carrying the payload text.
//! * **Serial fallback** — with one thread (or inputs below the caller's
//!   threshold) no thread is spawned at all; the closures run inline on
//!   the calling thread.
//!
//! The worker count is resolved per call by [`threads`]: an in-process
//! override (tests, benchmarks), else the `MCPAT_THREADS` environment
//! variable (read through [`knobs`], the workspace's single env-read
//! seam), else [`std::thread::available_parallelism`].

pub mod knobs;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hard ceiling on the worker count, however it is requested.
const MAX_THREADS: usize = 64;

/// A failure inside a fanned-out worker.
///
/// The modeling core is panic-free by policy, so this is defense in
/// depth: if a worker does panic (a bug), the caller receives this typed
/// error instead of an unwinding thread or a poisoned lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParError {
    /// A worker closure panicked; `detail` is the panic payload when it
    /// was a string, or a placeholder otherwise.
    WorkerPanicked {
        /// Panic payload text.
        detail: String,
    },
}

impl ParError {
    fn from_payload(payload: &(dyn std::any::Any + Send)) -> ParError {
        let detail = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| String::from("<non-string panic payload>"));
        ParError::WorkerPanicked { detail }
    }

    fn vanished() -> ParError {
        ParError::WorkerPanicked {
            detail: String::from("worker terminated without producing a result"),
        }
    }
}

impl std::fmt::Display for ParError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParError::WorkerPanicked { detail } => {
                write!(f, "worker thread panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for ParError {}

/// In-process thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for this process (0 clears the override,
/// falling back to `MCPAT_THREADS` / the detected parallelism).
///
/// Intended for tests and benchmarks that compare serial against
/// parallel execution without mutating the process environment.
pub fn set_thread_override(n: usize) {
    THREAD_OVERRIDE.store(n.min(MAX_THREADS), Ordering::SeqCst);
}

fn detected_parallelism() -> usize {
    static DETECTED: OnceLock<usize> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The worker count used by every helper in this crate, resolved as:
/// [`set_thread_override`] if set, else a positive integer
/// `MCPAT_THREADS` environment variable, else the machine's available
/// parallelism. Always ≥ 1 and ≤ 64.
#[must_use]
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = knobs::threads() {
        return n.min(MAX_THREADS);
    }
    detected_parallelism().min(MAX_THREADS)
}

/// Runs a closure with panics converted into [`ParError`].
///
/// # Errors
///
/// [`ParError::WorkerPanicked`] if the closure panicked.
pub fn catch<T>(f: impl FnOnce() -> T) -> Result<T, ParError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| ParError::from_payload(p.as_ref()))
}

/// Maps `f` over `items`, fanning out across [`threads`] workers when
/// there are at least `min_parallel` items. Results are returned in
/// input order; `f` receives `(index, &item)`.
///
/// # Errors
///
/// [`ParError::WorkerPanicked`] if any invocation of `f` panicked (the
/// first failing index in input order wins).
pub fn par_map<I, T, F>(items: &[I], min_parallel: usize, f: F) -> Result<Vec<T>, ParError>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 || items.len() < min_parallel.max(2) {
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            out.push(catch(|| f(i, item))?);
        }
        return Ok(out);
    }

    let chunk = items.len().div_ceil(workers);
    let mut slots: Vec<Option<Result<T, ParError>>> = Vec::new();
    slots.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        for (ci, (in_chunk, out_chunk)) in
            items.chunks(chunk).zip(slots.chunks_mut(chunk)).enumerate()
        {
            let f = &f;
            s.spawn(move || {
                let base = ci * chunk;
                for (j, (item, slot)) in in_chunk.iter().zip(out_chunk.iter_mut()).enumerate() {
                    *slot = Some(catch(|| f(base + j, item)));
                }
            });
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        out.push(slot.unwrap_or_else(|| Err(ParError::vanished()))?);
    }
    Ok(out)
}

/// Runs two independent closures, in parallel when [`threads`] > 1.
///
/// # Errors
///
/// [`ParError::WorkerPanicked`] if either closure panicked.
pub fn join2<A, B, FA, FB>(fa: FA, fb: FB) -> Result<(A, B), ParError>
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if threads() <= 1 {
        return Ok((catch(fa)?, catch(fb)?));
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| catch(fb));
        let a = catch(fa);
        let b = hb.join().unwrap_or_else(|_| Err(ParError::vanished()));
        Ok((a?, b?))
    })
}

/// Runs four independent closures, in parallel when [`threads`] > 1.
///
/// # Errors
///
/// [`ParError::WorkerPanicked`] if any closure panicked.
pub fn join4<A, B, C, D, FA, FB, FC, FD>(
    fa: FA,
    fb: FB,
    fc: FC,
    fd: FD,
) -> Result<(A, B, C, D), ParError>
where
    A: Send,
    B: Send,
    C: Send,
    D: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
    FC: FnOnce() -> C + Send,
    FD: FnOnce() -> D + Send,
{
    if threads() <= 1 {
        return Ok((catch(fa)?, catch(fb)?, catch(fc)?, catch(fd)?));
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| catch(fb));
        let hc = s.spawn(|| catch(fc));
        let hd = s.spawn(|| catch(fd));
        let a = catch(fa);
        let b = hb.join().unwrap_or_else(|_| Err(ParError::vanished()));
        let c = hc.join().unwrap_or_else(|_| Err(ParError::vanished()));
        let d = hd.join().unwrap_or_else(|_| Err(ParError::vanished()));
        Ok((a?, b?, c?, d?))
    })
}

/// Runs six independent closures, in parallel when [`threads`] > 1.
///
/// # Errors
///
/// [`ParError::WorkerPanicked`] if any closure panicked.
#[allow(clippy::many_single_char_names)]
pub fn join6<A, B, C, D, E, G, FA, FB, FC, FD, FE, FG>(
    fa: FA,
    fb: FB,
    fc: FC,
    fd: FD,
    fe: FE,
    fg: FG,
) -> Result<(A, B, C, D, E, G), ParError>
where
    A: Send,
    B: Send,
    C: Send,
    D: Send,
    E: Send,
    G: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
    FC: FnOnce() -> C + Send,
    FD: FnOnce() -> D + Send,
    FE: FnOnce() -> E + Send,
    FG: FnOnce() -> G + Send,
{
    if threads() <= 1 {
        return Ok((
            catch(fa)?,
            catch(fb)?,
            catch(fc)?,
            catch(fd)?,
            catch(fe)?,
            catch(fg)?,
        ));
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| catch(fb));
        let hc = s.spawn(|| catch(fc));
        let hd = s.spawn(|| catch(fd));
        let he = s.spawn(|| catch(fe));
        let hg = s.spawn(|| catch(fg));
        let a = catch(fa);
        let b = hb.join().unwrap_or_else(|_| Err(ParError::vanished()));
        let c = hc.join().unwrap_or_else(|_| Err(ParError::vanished()));
        let d = hd.join().unwrap_or_else(|_| Err(ParError::vanished()));
        let e = he.join().unwrap_or_else(|_| Err(ParError::vanished()));
        let g = hg.join().unwrap_or_else(|_| Err(ParError::vanished()));
        Ok((a?, b?, c?, d?, e?, g?))
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate the process-global thread override.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    fn with_override<T>(n: usize, f: impl FnOnce() -> T) -> T {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_thread_override(n);
        let out = f();
        set_thread_override(0);
        out
    }

    #[test]
    fn par_map_preserves_input_order() {
        for n in [1usize, 2, 3, 8] {
            let got = with_override(n, || {
                let items: Vec<usize> = (0..100).collect();
                par_map(&items, 2, |i, &x| {
                    assert_eq!(i, x);
                    x * x
                })
                .unwrap()
            });
            let want: Vec<usize> = (0..100).map(|x| x * x).collect();
            assert_eq!(got, want, "threads = {n}");
        }
    }

    #[test]
    fn par_map_small_inputs_stay_serial_and_correct() {
        let items = [7usize];
        let got = par_map(&items, 8, |_, &x| x + 1).unwrap();
        assert_eq!(got, vec![8]);
        let empty: [usize; 0] = [];
        assert!(par_map(&empty, 2, |_, &x: &usize| x).unwrap().is_empty());
    }

    #[test]
    fn worker_panic_becomes_typed_error() {
        for n in [1usize, 4] {
            let err = with_override(n, || {
                let items: Vec<usize> = (0..16).collect();
                par_map(&items, 2, |_, &x| {
                    assert!(x != 11, "boom at {x}");
                    x
                })
                .unwrap_err()
            });
            let ParError::WorkerPanicked { detail } = err;
            assert!(detail.contains("boom at 11"), "{detail}");
        }
    }

    #[test]
    fn join_helpers_return_everything() {
        for n in [1usize, 4] {
            with_override(n, || {
                let (a, b) = join2(|| 1, || "two").unwrap();
                assert_eq!((a, b), (1, "two"));
                let (a, b, c, d) = join4(|| 1, || 2, || 3, || 4).unwrap();
                assert_eq!((a, b, c, d), (1, 2, 3, 4));
                let (a, b, c, d, e, g) = join6(|| 1, || 2, || 3, || 4, || 5, || 6).unwrap();
                assert_eq!((a, b, c, d, e, g), (1, 2, 3, 4, 5, 6));
            });
        }
    }

    #[test]
    fn join_panic_is_contained() {
        let err = with_override(4, || {
            join2(|| 1, || -> i32 { panic!("join boom") }).unwrap_err()
        });
        assert!(err.to_string().contains("join boom"), "{err}");
    }

    #[test]
    fn override_beats_env_and_detection() {
        with_override(3, || assert_eq!(threads(), 3));
    }

    #[test]
    fn threads_is_at_least_one() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_thread_override(0);
        assert!(threads() >= 1);
    }
}
