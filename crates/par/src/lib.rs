//! # mcpat-par — pooled fan-out for the modeling stack
//!
//! The modeling layers are trivially parallel at three levels (array
//! partition sweeps, per-unit core builds, per-candidate chip builds),
//! but the build environment vendors every dependency, so this crate
//! provides the minimal primitives instead of rayon: [`par_map`] over a
//! fixed worker count plus heterogeneous joins ([`join2`] … [`join6`]),
//! all running on one lazily-started, process-wide work-stealing
//! thread pool ([`pool`]: per-worker deques plus an injector queue).
//! Nested fan-outs are **nesting-aware**: a call made from a pool
//! worker pushes onto that worker's own deque and the worker helps
//! drain the queues while it waits, so a candidate sweep over N chips
//! saturates the machine exactly once instead of N × depth times.
//!
//! Three properties every helper guarantees:
//!
//! * **Determinism** — results come back in input order; callers that
//!   reduce must use an order-independent (totally ordered) merge, and
//!   then serial and parallel execution are bit-identical.
//! * **Panic containment** — a panicking worker never unwinds across
//!   the pool (which would poison shared state or abort): every closure
//!   runs under `catch_unwind` and a panic surfaces as a typed
//!   [`ParError`] carrying the payload text. The pool itself stays
//!   usable after any number of contained panics.
//! * **Serial fallback** — with one thread (or inputs below the caller's
//!   threshold) the pool is never touched; the closures run inline on
//!   the calling thread.
//!
//! The worker count is resolved per call by [`threads`]: an in-process
//! override (tests, benchmarks), else the `MCPAT_THREADS` environment
//! variable (read through [`knobs`], the workspace's single env-read
//! seam), else [`std::thread::available_parallelism`].

pub mod knobs;
pub mod pool;

pub use pool::PoolStats;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hard ceiling on the worker count, however it is requested.
pub(crate) const MAX_THREADS: usize = 64;

/// A failure inside a fanned-out worker.
///
/// The modeling core is panic-free by policy, so this is defense in
/// depth: if a worker does panic (a bug), the caller receives this typed
/// error instead of an unwinding thread or a poisoned lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParError {
    /// A worker closure panicked; `detail` is the panic payload when it
    /// was a string, or a placeholder otherwise.
    WorkerPanicked {
        /// Panic payload text.
        detail: String,
    },
}

impl ParError {
    fn from_payload(payload: &(dyn std::any::Any + Send)) -> ParError {
        let detail = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| String::from("<non-string panic payload>"));
        ParError::WorkerPanicked { detail }
    }

    pub(crate) fn vanished() -> ParError {
        ParError::WorkerPanicked {
            detail: String::from("worker terminated without producing a result"),
        }
    }
}

impl std::fmt::Display for ParError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParError::WorkerPanicked { detail } => {
                write!(f, "worker thread panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for ParError {}

/// In-process thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for this process (0 clears the override,
/// falling back to `MCPAT_THREADS` / the detected parallelism).
///
/// Intended for tests and benchmarks that compare serial against
/// parallel execution without mutating the process environment.
pub fn set_thread_override(n: usize) {
    THREAD_OVERRIDE.store(n.min(MAX_THREADS), Ordering::SeqCst);
}

fn detected_parallelism() -> usize {
    static DETECTED: OnceLock<usize> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The `MCPAT_THREADS` knob, resolved once per process. `threads()` is
/// called by every `join*`/`par_map` — hundreds of times inside one
/// chip build — and `std::env::var` takes a process-global lock and
/// allocates per call, which on a single-lane host made the
/// override-free "parallel" mode measurably slower than the pinned
/// serial mode while executing the exact same inline code (the
/// `explore_parallel_vs_serial < 1` anomaly on the 1-CPU benchline
/// baseline). The documented knob contract already directs in-process
/// callers to [`set_thread_override`] rather than mutating the
/// environment mid-run, so a one-shot read observes every supported
/// configuration.
fn env_threads() -> Option<usize> {
    static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();
    *ENV_THREADS.get_or_init(knobs::threads)
}

/// The worker count used by every helper in this crate, resolved as:
/// [`set_thread_override`] if set, else a positive integer
/// `MCPAT_THREADS` environment variable (read once per process), else
/// the machine's available parallelism. Always ≥ 1 and ≤ 64.
#[must_use]
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = env_threads() {
        return n.min(MAX_THREADS);
    }
    detected_parallelism().min(MAX_THREADS)
}

/// Runs a closure with panics converted into [`ParError`].
///
/// # Errors
///
/// [`ParError::WorkerPanicked`] if the closure panicked.
pub fn catch<T>(f: impl FnOnce() -> T) -> Result<T, ParError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| {
        // The chaos-testing worker-kill marker must keep unwinding on
        // pool workers (it exists to kill the thread); everything else
        // is contained as a typed error.
        if pool::is_kill_payload(p.as_ref()) {
            std::panic::resume_unwind(p);
        }
        ParError::from_payload(p.as_ref())
    })
}

/// Maps `f` over `items`, fanning out across [`threads`] workers when
/// there are at least `min_parallel` items. Results are returned in
/// input order; `f` receives `(index, &item)`.
///
/// # Errors
///
/// [`ParError::WorkerPanicked`] if any invocation of `f` panicked (the
/// first failing index in input order wins).
pub fn par_map<I, T, F>(items: &[I], min_parallel: usize, f: F) -> Result<Vec<T>, ParError>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 || items.len() < min_parallel.max(2) {
        pool::note_inline(items.len() as u64);
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            out.push(catch(|| f(i, item))?);
        }
        return Ok(out);
    }
    pool::par_map_pooled(items, &f)
}

/// Runs two independent closures, in parallel when [`threads`] > 1.
///
/// # Errors
///
/// [`ParError::WorkerPanicked`] if either closure panicked.
pub fn join2<A, B, FA, FB>(fa: FA, fb: FB) -> Result<(A, B), ParError>
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if threads() <= 1 {
        pool::note_inline(2);
        return Ok((catch(fa)?, catch(fb)?));
    }
    pool::join2_pooled(fa, fb)
}

/// Runs four independent closures, in parallel when [`threads`] > 1.
///
/// # Errors
///
/// [`ParError::WorkerPanicked`] if any closure panicked.
pub fn join4<A, B, C, D, FA, FB, FC, FD>(
    fa: FA,
    fb: FB,
    fc: FC,
    fd: FD,
) -> Result<(A, B, C, D), ParError>
where
    A: Send,
    B: Send,
    C: Send,
    D: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
    FC: FnOnce() -> C + Send,
    FD: FnOnce() -> D + Send,
{
    if threads() <= 1 {
        pool::note_inline(4);
        return Ok((catch(fa)?, catch(fb)?, catch(fc)?, catch(fd)?));
    }
    pool::join4_pooled(fa, fb, fc, fd)
}

/// Runs six independent closures, in parallel when [`threads`] > 1.
///
/// # Errors
///
/// [`ParError::WorkerPanicked`] if any closure panicked.
#[allow(clippy::many_single_char_names)]
pub fn join6<A, B, C, D, E, G, FA, FB, FC, FD, FE, FG>(
    fa: FA,
    fb: FB,
    fc: FC,
    fd: FD,
    fe: FE,
    fg: FG,
) -> Result<(A, B, C, D, E, G), ParError>
where
    A: Send,
    B: Send,
    C: Send,
    D: Send,
    E: Send,
    G: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
    FC: FnOnce() -> C + Send,
    FD: FnOnce() -> D + Send,
    FE: FnOnce() -> E + Send,
    FG: FnOnce() -> G + Send,
{
    if threads() <= 1 {
        pool::note_inline(6);
        return Ok((
            catch(fa)?,
            catch(fb)?,
            catch(fc)?,
            catch(fd)?,
            catch(fe)?,
            catch(fg)?,
        ));
    }
    pool::join6_pooled(fa, fb, fc, fd, fe, fg)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate the process-global thread override.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    fn with_override<T>(n: usize, f: impl FnOnce() -> T) -> T {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_thread_override(n);
        let out = f();
        set_thread_override(0);
        out
    }

    #[test]
    fn par_map_preserves_input_order() {
        for n in [1usize, 2, 3, 8] {
            let got = with_override(n, || {
                let items: Vec<usize> = (0..100).collect();
                par_map(&items, 2, |i, &x| {
                    assert_eq!(i, x);
                    x * x
                })
                .unwrap()
            });
            let want: Vec<usize> = (0..100).map(|x| x * x).collect();
            assert_eq!(got, want, "threads = {n}");
        }
    }

    #[test]
    fn par_map_small_inputs_stay_serial_and_correct() {
        let items = [7usize];
        let got = par_map(&items, 8, |_, &x| x + 1).unwrap();
        assert_eq!(got, vec![8]);
        let empty: [usize; 0] = [];
        assert!(par_map(&empty, 2, |_, &x: &usize| x).unwrap().is_empty());
    }

    #[test]
    fn worker_panic_becomes_typed_error() {
        for n in [1usize, 4] {
            let err = with_override(n, || {
                let items: Vec<usize> = (0..16).collect();
                par_map(&items, 2, |_, &x| {
                    assert!(x != 11, "boom at {x}");
                    x
                })
                .unwrap_err()
            });
            let ParError::WorkerPanicked { detail } = err;
            assert!(detail.contains("boom at 11"), "{detail}");
        }
    }

    #[test]
    fn join_helpers_return_everything() {
        for n in [1usize, 4] {
            with_override(n, || {
                let (a, b) = join2(|| 1, || "two").unwrap();
                assert_eq!((a, b), (1, "two"));
                let (a, b, c, d) = join4(|| 1, || 2, || 3, || 4).unwrap();
                assert_eq!((a, b, c, d), (1, 2, 3, 4));
                let (a, b, c, d, e, g) = join6(|| 1, || 2, || 3, || 4, || 5, || 6).unwrap();
                assert_eq!((a, b, c, d, e, g), (1, 2, 3, 4, 5, 6));
            });
        }
    }

    #[test]
    fn join_panic_is_contained() {
        let err = with_override(4, || {
            join2(|| 1, || -> i32 { panic!("join boom") }).unwrap_err()
        });
        assert!(err.to_string().contains("join boom"), "{err}");
    }

    #[test]
    fn nested_fanout_runs_on_the_pool_without_oversubscription() {
        let got = with_override(4, || {
            let items: Vec<usize> = (0..8).collect();
            par_map(&items, 2, |_, &x| {
                let (a, b, c, d) = join4(|| x, || x + 1, || x + 2, || x + 3).unwrap();
                let (e, f, g, h, i, j) =
                    join6(|| a, || b, || c, || d, || x * 10, || x * 100).unwrap();
                e + f + g + h + i + j
            })
            .unwrap()
        });
        let want: Vec<usize> = (0..8).map(|x| 4 * x + 6 + 10 * x + 100 * x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn nested_join_panic_is_contained_and_pool_stays_usable() {
        let err = with_override(4, || {
            let items: Vec<usize> = (0..6).collect();
            par_map(&items, 2, |_, &x| {
                join6(
                    || x,
                    || x,
                    || x,
                    || x,
                    || x,
                    || {
                        assert!(x != 3, "inner boom {x}");
                        x
                    },
                )
                .unwrap()
                .0
            })
            .unwrap_err()
        });
        assert!(err.to_string().contains("inner boom 3"), "{err}");
        // The pool must remain fully usable after the contained panic.
        let ok = with_override(4, || {
            let items: Vec<usize> = (0..32).collect();
            par_map(&items, 2, |_, &x| x + 1).unwrap()
        });
        assert_eq!(ok, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn pooled_calls_submit_tasks_and_report_stats() {
        let before = pool::stats();
        let _ = with_override(4, || {
            let items: Vec<usize> = (0..16).collect();
            par_map(&items, 2, |_, &x| x).unwrap()
        });
        let after = pool::stats();
        assert!(after.submitted >= before.submitted + 16, "{after:?}");
        assert!(after.workers >= 1);
    }

    #[test]
    fn single_worker_fanout_is_pure_inline_with_zero_steals() {
        // The 1-CPU regression mode: with one worker every fan-out —
        // including nesting shaped like a chip build (par_map over
        // join4 over join6) — must run inline without ever touching
        // the pool queues. Submitting with no second lane to drain
        // the queue is pure overhead (the `clock_bisection_full`
        // parallel-slower-than-serial anomaly).
        let (before, after, got) = with_override(1, || {
            let before = pool::stats();
            let items: Vec<usize> = (0..12).collect();
            let got = par_map(&items, 2, |_, &x| {
                let (a, b, c, d) = join4(|| x, || x + 1, || x + 2, || x + 3).unwrap();
                let (e, f, ..) = join6(|| a + b, || c + d, || 0, || 0, || 0, || 0).unwrap();
                e + f
            })
            .unwrap();
            (before, pool::stats(), got)
        });
        let want: Vec<usize> = (0..12).map(|x| 4 * x + 6).collect();
        assert_eq!(got, want);
        assert_eq!(after.steals, before.steals, "one worker must never steal");
        assert_eq!(
            after.submitted, before.submitted,
            "one worker must never submit to the pool queues"
        );
        // Every closure (12 map items + 3 + 5 join arms each) billed
        // as inline execution.
        assert!(
            after.inline_execs >= before.inline_execs + 12 * (1 + 4 + 6),
            "{after:?} vs {before:?}"
        );
    }

    #[test]
    fn override_beats_env_and_detection() {
        with_override(3, || assert_eq!(threads(), 3));
    }

    #[test]
    fn threads_is_at_least_one() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_thread_override(0);
        assert!(threads() >= 1);
    }
}
