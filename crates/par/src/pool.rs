//! The persistent work-stealing pool behind the fan-out helpers.
//!
//! PR 2 fanned work out with `std::thread::scope`, spawning fresh OS
//! threads on every `par_map`/`join*` call. That is correct but
//! catastrophic under nesting: `explore` → `join4` (chip units) →
//! `join6` (core units) → partition sweeps spawns `N × depth` threads
//! and oversubscribes the machine (the committed baseline measured
//! 0.78× *slow-down* for parallel explore). This module replaces the
//! spawning with one process-wide pool:
//!
//! * **Injector + per-worker deques.** External callers push task
//!   batches onto a shared injector queue; pool workers push nested
//!   fan-outs onto their own deque. A worker pops its own deque LIFO
//!   (locality), then the injector FIFO, then *steals* FIFO from a
//!   sibling's deque. All queues live under one short-hold mutex —
//!   tasks here are microseconds to milliseconds of modeling work, so
//!   queue transfer cost is noise.
//! * **Help-while-wait.** A caller that submitted a batch does not
//!   block: it executes queued tasks (its own, or anyone's) until its
//!   batch latch opens. Workers blocked on a *nested* fan-out do the
//!   same, so every OS thread stays busy and nested joins can never
//!   deadlock the pool.
//! * **Lazy, growable sizing.** No thread is spawned until the first
//!   parallel call. The pool grows to `threads() - 1` resident workers
//!   (the submitting thread is the final lane) and honors the same
//!   resolution as [`crate::threads`]: override, then `MCPAT_THREADS`
//!   (via [`crate::knobs`] — this module reads no environment), then
//!   detected parallelism.
//!
//! # Safety
//!
//! Tasks are type-erased pointers to stack frames of the submitting
//! caller ([`TaskRef`]). This is sound because every submission path
//! blocks (helping) until its batch latch reports completion, and a
//! task's final touch of batch memory is the latch update itself; the
//! wake-up signal afterwards only touches the pool's `'static` state.
//! Panics never unwind through the pool: user closures run under
//! [`crate::catch`], latches open via drop guards, and the worker loop
//! carries a defense-in-depth `catch_unwind` so a buggy task can never
//! kill or poison a worker.

use crate::ParError;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// Upper bound on resident workers (one below [`crate::MAX_THREADS`]:
/// the submitting thread is always the extra lane).
const MAX_WORKERS: usize = crate::MAX_THREADS - 1;

/// Heartbeat for idle waits. Wake-ups are edge-triggered through the
/// condvar; the timeout is pure defense in depth so a (hypothetical)
/// missed notification degrades to slow polling instead of a hang.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// Snapshot of the pool's monotonic activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Resident worker threads (0 until the first parallel call).
    pub workers: usize,
    /// Tasks pushed onto the injector or a worker deque.
    pub submitted: u64,
    /// Tasks executed by a thread other than their queue's owner.
    pub steals: u64,
    /// Closures run inline on the calling thread without submission
    /// (serial fallback and the leading closure of each join).
    pub inline_execs: u64,
    /// Worker threads respawned after dying mid-task (a task that
    /// unwinds through the defense-in-depth catch — see
    /// [`chaos_kill_worker`] — kills its worker; a drop guard respawns
    /// a replacement up to a capped respawn budget).
    pub workers_respawned: u64,
}

/// A type-erased pointer to a task living on a submitting caller's
/// stack. See the module-level safety argument. `exec` receives
/// "this execution was a steal" so the task can bill the steal to the
/// scope chain it captured at submission time (see `mcpat-obs`).
#[derive(Clone, Copy)]
pub(crate) struct TaskRef {
    data: *const (),
    exec: unsafe fn(*const (), bool),
}

// SAFETY: the pointee is a `Sync` batch structure owned by a caller
// that outlives execution (it blocks on the batch latch), so handing
// the pointer to another thread is sound.
unsafe impl Send for TaskRef {}

struct Queues {
    injector: VecDeque<TaskRef>,
    locals: Vec<VecDeque<TaskRef>>,
}

struct Shared {
    queues: Mutex<Queues>,
    cv: Condvar,
    submitted: AtomicU64,
    steals: AtomicU64,
    inline_execs: AtomicU64,
    respawned: AtomicU64,
}

thread_local! {
    /// Index of the pool worker running on this thread, if any.
    static WORKER: Cell<Option<usize>> = const { Cell::new(None) };
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        queues: Mutex::new(Queues {
            injector: VecDeque::new(),
            locals: Vec::new(),
        }),
        cv: Condvar::new(),
        submitted: AtomicU64::new(0),
        steals: AtomicU64::new(0),
        inline_execs: AtomicU64::new(0),
        respawned: AtomicU64::new(0),
    })
}

/// Locks the queue mutex, shrugging off poisoning: no user code ever
/// runs while the guard is held, so the protected state cannot be
/// mid-mutation even after a panic elsewhere.
fn lock(shared: &Shared) -> MutexGuard<'_, Queues> {
    shared.queues.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Current counter snapshot. Counters are process-global and
/// monotonic; callers measure phases by differencing two snapshots.
#[must_use]
pub fn stats() -> PoolStats {
    let shared = shared();
    PoolStats {
        workers: lock(shared).locals.len(),
        submitted: shared.submitted.load(Ordering::Relaxed),
        steals: shared.steals.load(Ordering::Relaxed),
        inline_execs: shared.inline_execs.load(Ordering::Relaxed),
        workers_respawned: shared.respawned.load(Ordering::Relaxed),
    }
}

/// Records `n` closures executed inline without pool submission, both
/// globally and against the caller's active scope chain.
pub(crate) fn note_inline(n: u64) {
    shared().inline_execs.fetch_add(n, Ordering::Relaxed);
    mcpat_obs::record_pool_inline(n);
}

/// True when the calling thread is a resident pool worker (used by
/// tests; nested submission routing keys off the same thread-local).
#[must_use]
pub fn is_pool_worker() -> bool {
    WORKER.with(Cell::get).is_some()
}

/// True when a fan-out from this thread would have no second lane to
/// run on: the pool holds no resident worker besides (possibly) the
/// calling thread itself — either worker spawning failed, or the sole
/// resident worker is the caller of a nested fan-out. Submitting in
/// that state only round-trips every task through the queue mutex and
/// condvar back to this same thread (the `clock_bisection_full`
/// parallel-slower-than-serial anomaly on a 1-CPU host), so the pooled
/// paths fall back to inline execution instead.
fn no_second_lane(shared: &Shared) -> bool {
    let workers = lock(shared).locals.len();
    workers == 0 || (workers == 1 && is_pool_worker())
}

/// Grows the pool to `want` resident workers (capped, never shrinks).
/// Spawn failures degrade gracefully: submitting threads always help
/// drain the queues, so fewer workers costs throughput, not progress.
fn ensure_workers(shared: &'static Shared, want: usize) {
    let want = want.min(MAX_WORKERS);
    let mut q = lock(shared);
    while q.locals.len() < want {
        let index = q.locals.len();
        q.locals.push(VecDeque::new());
        let spawned = std::thread::Builder::new()
            .name(format!("mcpat-par-{index}"))
            .spawn(move || worker_main(shared, index));
        if spawned.is_err() {
            q.locals.pop();
            break;
        }
    }
}

/// Lifetime cap on worker respawns: generous against any plausible bug
/// rate, but bounded so a pathological kill loop cannot fork-bomb.
const MAX_RESPAWNS: u64 = 256;

/// Respawns worker lane `me` when its thread dies by panic. The lane's
/// deque stays registered (and stealable) while the lane is dead, so
/// queued tasks are never lost either way; the respawn restores
/// steady-state throughput.
struct RespawnGuard {
    shared: &'static Shared,
    me: usize,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        if self.shared.respawned.load(Ordering::SeqCst) >= MAX_RESPAWNS {
            return;
        }
        let shared = self.shared;
        let me = self.me;
        let spawned = std::thread::Builder::new()
            .name(format!("mcpat-par-{me}"))
            .spawn(move || worker_main(shared, me));
        if spawned.is_ok() {
            shared.respawned.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Marker panic payload used by [`chaos_kill_worker`]. Both unwind
/// catches on the worker path re-raise it instead of converting it to
/// a [`ParError`], so the carrying worker thread genuinely dies.
#[doc(hidden)]
#[derive(Debug)]
pub struct WorkerKill;

/// Chaos-testing hook: when called from a task running on a resident
/// pool worker, kills that worker thread mid-task (the task's latch
/// still opens via its drop guard, so the submitter observes a typed
/// error instead of a hang, and [`RespawnGuard`] brings a replacement
/// lane up). A no-op on non-worker threads — external helpers must
/// never die.
#[doc(hidden)]
#[allow(clippy::panic)] // the panic IS the chaos injection: it must unwind the worker
pub fn chaos_kill_worker() {
    if is_pool_worker() {
        std::panic::panic_any(WorkerKill);
    }
}

/// True when an unwind payload is the chaos kill marker and the
/// current thread is a pool worker that should die from it.
pub(crate) fn is_kill_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<WorkerKill>().is_some() && is_pool_worker()
}

/// Pops the best task for `me`: own deque LIFO, injector (FIFO for
/// workers, LIFO for external helpers — their own batch is on top),
/// then steal FIFO from a sibling. The bool is "this was a steal".
fn pop_task(q: &mut Queues, me: Option<usize>) -> Option<(TaskRef, bool)> {
    if let Some(i) = me {
        if let Some(t) = q.locals.get_mut(i).and_then(VecDeque::pop_back) {
            return Some((t, false));
        }
        if let Some(t) = q.injector.pop_front() {
            return Some((t, false));
        }
    } else if let Some(t) = q.injector.pop_back() {
        return Some((t, false));
    }
    for (j, deque) in q.locals.iter_mut().enumerate() {
        if Some(j) == me {
            continue;
        }
        if let Some(t) = deque.pop_front() {
            return Some((t, true));
        }
    }
    None
}

/// Runs one task. The task's own `exec` already routes user panics
/// into [`ParError`] slots and opens its latch via a drop guard; the
/// outer catch is defense in depth so a worker thread never unwinds.
fn run_task(task: TaskRef, stolen: bool) {
    // SAFETY: see the module-level argument — the submitting caller
    // keeps the pointee alive until the batch latch opens.
    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| unsafe {
        (task.exec)(task.data, stolen)
    })) {
        // The chaos kill marker must actually kill the worker thread;
        // every other panic is contained here (defense in depth).
        if is_kill_payload(payload.as_ref()) {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Wakes every parked thread after queue or latch state changed. The
/// empty lock section orders the wake against a helper that checked
/// its latch under the lock and is about to park.
fn signal(shared: &Shared) {
    drop(lock(shared));
    shared.cv.notify_all();
}

/// Worker-thread entry point: installs the respawn guard, then runs
/// the task loop forever (the loop only exits by unwinding, which
/// triggers the guard).
fn worker_main(shared: &'static Shared, me: usize) {
    let _respawn = RespawnGuard { shared, me };
    worker_loop(shared, me);
}

fn worker_loop(shared: &'static Shared, me: usize) {
    WORKER.with(|w| w.set(Some(me)));
    loop {
        let (task, stolen) = {
            let mut q = lock(shared);
            loop {
                if let Some(found) = pop_task(&mut q, Some(me)) {
                    break found;
                }
                let (guard, _) = shared
                    .cv
                    .wait_timeout(q, IDLE_POLL)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        };
        if stolen {
            shared.steals.fetch_add(1, Ordering::Relaxed);
        }
        run_task(task, stolen);
        signal(shared);
    }
}

/// Pushes a batch of tasks: nested submissions (from a pool worker) go
/// to that worker's own deque, external ones to the injector.
fn submit(shared: &'static Shared, tasks: impl IntoIterator<Item = TaskRef>) {
    let me = WORKER.with(Cell::get);
    let mut pushed = 0u64;
    {
        let mut q = lock(shared);
        match me.and_then(|i| q.locals.get_mut(i)) {
            Some(local) => {
                for t in tasks {
                    local.push_back(t);
                    pushed += 1;
                }
            }
            None => {
                for t in tasks {
                    q.injector.push_back(t);
                    pushed += 1;
                }
            }
        }
    }
    shared.submitted.fetch_add(pushed, Ordering::Relaxed);
    mcpat_obs::record_pool_submitted(pushed);
    shared.cv.notify_all();
}

/// Executes queued tasks until `done` reports the caller's batch
/// latch open. This is what makes nested fan-out safe: a blocked
/// submitter is indistinguishable from a worker.
fn help_until(shared: &'static Shared, done: &dyn Fn() -> bool) {
    let me = WORKER.with(Cell::get);
    loop {
        if done() {
            return;
        }
        let popped = {
            let mut q = lock(shared);
            let popped = pop_task(&mut q, me);
            if popped.is_none() {
                // Re-check under the lock: a completion signal takes
                // this same lock, so parking here cannot lose it.
                if done() {
                    return;
                }
                let _ = shared
                    .cv
                    .wait_timeout(q, IDLE_POLL)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            popped
        };
        if let Some((task, stolen)) = popped {
            if stolen {
                shared.steals.fetch_add(1, Ordering::Relaxed);
            }
            run_task(task, stolen);
            signal(shared);
        }
    }
}

/// One result slot of a `par_map` batch. Each slot is written by
/// exactly one task and read by the owner only after the batch latch
/// opens, so the unsynchronized cell is race-free.
struct Slot<T>(UnsafeCell<Option<Result<T, ParError>>>);

// SAFETY: disjoint single-writer access before the latch, owner-only
// access after (ordered by the Acquire/Release latch counter).
unsafe impl<T: Send> Sync for Slot<T> {}

/// Shared state of one `par_map` call, borrowed by its tasks. The
/// submitter's scope chain rides along so that a task executed (or
/// stolen) by any thread still bills the submitting scope.
struct MapCall<'a, I, T, F> {
    items: &'a [I],
    f: &'a F,
    slots: &'a [Slot<T>],
    remaining: &'a AtomicUsize,
    chain: mcpat_obs::ScopeChain,
    budget: mcpat_guard::BudgetChain,
}

/// One item-task of a `par_map` call.
struct MapTask<'a, I, T, F> {
    call: &'a MapCall<'a, I, T, F>,
    index: usize,
}

/// Opens a counting latch on drop, then wakes parked threads. Runs
/// even if the slot write path has a bug that panics, so the owner can
/// never hang on a lost decrement.
struct OpenLatch<'a> {
    remaining: &'a AtomicUsize,
}

impl Drop for OpenLatch<'_> {
    fn drop(&mut self) {
        // The decrement is the task's final touch of caller memory;
        // `signal` below only touches the pool's 'static state.
        self.remaining.fetch_sub(1, Ordering::AcqRel);
        signal(shared());
    }
}

unsafe fn exec_map_task<I, T, F>(data: *const (), stolen: bool)
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    // SAFETY: `data` points at a live `MapTask` per the submission
    // contract (owner helps until `remaining` reaches zero).
    let task = unsafe { &*data.cast::<MapTask<'_, I, T, F>>() };
    let call = task.call;
    // Declared before the latch so the latch (the final touch of
    // caller memory) drops first; the chain guards own only Arcs and
    // thread-local state, so their later drops never touch the caller.
    let _chain = call.chain.activate();
    let _budget = call.budget.activate();
    if stolen {
        mcpat_obs::record_pool_steal();
    }
    let _latch = OpenLatch {
        remaining: call.remaining,
    };
    if let (Some(item), Some(slot)) = (call.items.get(task.index), call.slots.get(task.index)) {
        let result = crate::catch(|| (call.f)(task.index, item));
        // SAFETY: this task is the slot's only writer (disjoint
        // indices), and the owner reads only after the latch opens.
        unsafe { *slot.0.get() = Some(result) };
    }
}

/// The pooled backend of [`crate::par_map`]: one task per item, input
/// order restored through indexed slots, serial-order error priority.
pub(crate) fn par_map_pooled<I, T, F>(items: &[I], f: &F) -> Result<Vec<T>, ParError>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let shared = shared();
    ensure_workers(shared, crate::threads().saturating_sub(1));
    if no_second_lane(shared) {
        note_inline(items.len() as u64);
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            out.push(crate::catch(|| f(i, item))?);
        }
        return Ok(out);
    }
    let slots: Vec<Slot<T>> = (0..items.len())
        .map(|_| Slot(UnsafeCell::new(None)))
        .collect();
    let remaining = AtomicUsize::new(items.len());
    let call = MapCall {
        items,
        f,
        slots: &slots,
        remaining: &remaining,
        chain: mcpat_obs::current_chain(),
        budget: mcpat_guard::current_chain(),
    };
    let tasks: Vec<MapTask<'_, I, T, F>> = (0..items.len())
        .map(|index| MapTask { call: &call, index })
        .collect();
    submit(
        shared,
        tasks.iter().map(|t| TaskRef {
            data: std::ptr::from_ref(t).cast(),
            exec: exec_map_task::<I, T, F>,
        }),
    );
    help_until(shared, &|| remaining.load(Ordering::Acquire) == 0);
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        out.push(
            slot.0
                .into_inner()
                .unwrap_or_else(|| Err(ParError::vanished()))?,
        );
    }
    Ok(out)
}

/// One heterogeneous closure of a join, parked on the caller's stack
/// until a pool thread (or the helping caller itself) runs it.
pub(crate) struct StackJob<R, F> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<Result<R, ParError>>>,
    done: AtomicBool,
    chain: mcpat_obs::ScopeChain,
    budget: mcpat_guard::BudgetChain,
}

// SAFETY: `f`/`result` are touched by exactly one executing thread
// before `done` flips (Release), and by the owner only after it
// observes `done` (Acquire).
unsafe impl<R: Send, F: Send> Sync for StackJob<R, F> {}

impl<R, F> StackJob<R, F>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    pub(crate) fn new(f: F) -> StackJob<R, F> {
        StackJob {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            done: AtomicBool::new(false),
            chain: mcpat_obs::current_chain(),
            budget: mcpat_guard::current_chain(),
        }
    }

    fn as_task(&self) -> TaskRef {
        TaskRef {
            data: std::ptr::from_ref(self).cast(),
            exec: exec_stack_job::<R, F>,
        }
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    fn take(self) -> Result<R, ParError> {
        self.result
            .into_inner()
            .unwrap_or_else(|| Err(ParError::vanished()))
    }
}

/// Flips a boolean latch open on drop, then wakes parked threads.
struct OpenFlag<'a> {
    done: &'a AtomicBool,
}

impl Drop for OpenFlag<'_> {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Release);
        signal(shared());
    }
}

unsafe fn exec_stack_job<R, F>(data: *const (), stolen: bool)
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    // SAFETY: `data` points at a live `StackJob` per the submission
    // contract (owner helps until `done` flips).
    let job = unsafe { &*data.cast::<StackJob<R, F>>() };
    // Chain guards before the latch: the latch must stay the final
    // touch of caller memory (see `exec_map_task`).
    let _chain = job.chain.activate();
    let _budget = job.budget.activate();
    if stolen {
        mcpat_obs::record_pool_steal();
    }
    let _latch = OpenFlag { done: &job.done };
    // SAFETY: sole pre-latch accessor of `f` and `result`.
    let f = unsafe { (*job.f.get()).take() };
    if let Some(f) = f {
        let result = crate::catch(f);
        unsafe { *job.result.get() = Some(result) };
    }
}

/// Submits `jobs` and runs `lead` inline, helping until every job's
/// latch opens. The shared skeleton of `join2/4/6`.
fn join_with<A, FA>(lead: FA, jobs: &[TaskRef], all_done: &dyn Fn() -> bool) -> Result<A, ParError>
where
    A: Send,
    FA: FnOnce() -> A + Send,
{
    let shared = shared();
    ensure_workers(shared, crate::threads().saturating_sub(1));
    if no_second_lane(shared) {
        note_inline(1 + jobs.len() as u64);
        let lead_result = crate::catch(lead);
        for job in jobs {
            run_task(*job, false);
        }
        return lead_result;
    }
    submit(shared, jobs.iter().copied());
    note_inline(1);
    let lead_result = crate::catch(lead);
    help_until(shared, all_done);
    lead_result
}

pub(crate) fn join2_pooled<A, B, FA, FB>(fa: FA, fb: FB) -> Result<(A, B), ParError>
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    let jb = StackJob::new(fb);
    let a = join_with(fa, &[jb.as_task()], &|| jb.is_done());
    let b = jb.take();
    Ok((a?, b?))
}

pub(crate) fn join4_pooled<A, B, C, D, FA, FB, FC, FD>(
    fa: FA,
    fb: FB,
    fc: FC,
    fd: FD,
) -> Result<(A, B, C, D), ParError>
where
    A: Send,
    B: Send,
    C: Send,
    D: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
    FC: FnOnce() -> C + Send,
    FD: FnOnce() -> D + Send,
{
    let jb = StackJob::new(fb);
    let jc = StackJob::new(fc);
    let jd = StackJob::new(fd);
    let a = join_with(fa, &[jb.as_task(), jc.as_task(), jd.as_task()], &|| {
        jb.is_done() && jc.is_done() && jd.is_done()
    });
    let (b, c, d) = (jb.take(), jc.take(), jd.take());
    Ok((a?, b?, c?, d?))
}

#[allow(clippy::many_single_char_names)]
pub(crate) fn join6_pooled<A, B, C, D, E, G, FA, FB, FC, FD, FE, FG>(
    fa: FA,
    fb: FB,
    fc: FC,
    fd: FD,
    fe: FE,
    fg: FG,
) -> Result<(A, B, C, D, E, G), ParError>
where
    A: Send,
    B: Send,
    C: Send,
    D: Send,
    E: Send,
    G: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
    FC: FnOnce() -> C + Send,
    FD: FnOnce() -> D + Send,
    FE: FnOnce() -> E + Send,
    FG: FnOnce() -> G + Send,
{
    let jb = StackJob::new(fb);
    let jc = StackJob::new(fc);
    let jd = StackJob::new(fd);
    let je = StackJob::new(fe);
    let jg = StackJob::new(fg);
    let a = join_with(
        fa,
        &[
            jb.as_task(),
            jc.as_task(),
            jd.as_task(),
            je.as_task(),
            jg.as_task(),
        ],
        &|| jb.is_done() && jc.is_done() && jd.is_done() && je.is_done() && jg.is_done(),
    );
    let (b, c, d, e, g) = (jb.take(), jc.take(), jd.take(), je.take(), jg.take());
    Ok((a?, b?, c?, d?, e?, g?))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_monotonic_and_start_consistent() {
        let before = stats();
        note_inline(3);
        let after = stats();
        assert!(after.inline_execs >= before.inline_execs + 3);
        assert!(after.submitted >= before.submitted);
        assert!(after.steals >= before.steals);
    }

    #[test]
    fn pool_worker_flag_is_false_on_external_threads() {
        assert!(!is_pool_worker());
    }
}
