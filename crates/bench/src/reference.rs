//! Published reference data for the validation targets.
//!
//! Totals (TDP/typical power, die area) are the well-known published
//! figures. The per-component shares are **reconstructions** of the
//! kind of breakdown the McPAT paper tabulates — the exact MICRO'09
//! table values are not available in this offline environment, so treat
//! the shares as approximate anchors for the *shape* of the breakdown
//! (see the mismatch notice in DESIGN.md).

use mcpat::ProcessorConfig;

/// Published reference for one chip.
#[derive(Debug, Clone)]
pub struct PublishedChip {
    /// Chip name matching the preset.
    pub name: &'static str,
    /// Published power, W.
    pub power_w: f64,
    /// Published die area, mm².
    pub area_mm2: f64,
    /// Process node, nm (for the table header).
    pub node_nm: u32,
    /// Clock, GHz.
    pub clock_ghz: f64,
    /// Approximate published component shares of total power
    /// (name, fraction); reconstructed, see module docs.
    pub power_shares: &'static [(&'static str, f64)],
    /// The preset constructor.
    pub config: fn() -> ProcessorConfig,
}

/// The four validation targets of the paper.
#[must_use]
pub fn published_chips() -> Vec<PublishedChip> {
    vec![
        PublishedChip {
            name: "niagara",
            power_w: 63.0,
            area_mm2: 378.0,
            node_nm: 90,
            clock_ghz: 1.2,
            power_shares: &[
                ("cores", 0.33),
                ("l2", 0.12),
                ("noc", 0.08),
                ("mc", 0.10),
                ("io", 0.16),
                ("clock", 0.18),
            ],
            config: ProcessorConfig::niagara,
        },
        PublishedChip {
            name: "niagara2",
            power_w: 84.0,
            area_mm2: 342.0,
            node_nm: 65,
            clock_ghz: 1.4,
            power_shares: &[
                ("cores", 0.37),
                ("l2", 0.12),
                ("noc", 0.07),
                ("mc", 0.14),
                ("io", 0.14),
                ("clock", 0.13),
            ],
            config: ProcessorConfig::niagara2,
        },
        PublishedChip {
            name: "alpha21364",
            power_w: 125.0,
            area_mm2: 397.0,
            node_nm: 180,
            clock_ghz: 1.2,
            power_shares: &[
                ("cores", 0.35),
                ("l2", 0.06),
                ("noc", 0.05),
                ("mc", 0.07),
                ("io", 0.12),
                ("clock", 0.33),
            ],
            config: ProcessorConfig::alpha21364,
        },
        PublishedChip {
            name: "xeon-tulsa",
            power_w: 150.0,
            area_mm2: 435.0,
            node_nm: 65,
            clock_ghz: 3.4,
            power_shares: &[
                ("cores", 0.45),
                ("l2", 0.03),
                ("l3", 0.12),
                ("io", 0.07),
                ("clock", 0.30),
            ],
            config: ProcessorConfig::tulsa,
        },
    ]
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn shares_are_sane_fractions() {
        for chip in published_chips() {
            let sum: f64 = chip.power_shares.iter().map(|(_, s)| s).sum();
            assert!(sum > 0.7 && sum <= 1.05, "{}: shares sum {sum}", chip.name);
        }
    }

    #[test]
    fn configs_build() {
        for chip in published_chips() {
            let cfg = (chip.config)();
            assert_eq!(cfg.name, chip.name);
        }
    }
}
