//! Regenerates every table and figure of the evaluation as text
//! (paper-published values vs this implementation's measurements).
//!
//! Run with: `cargo run --release -p mcpat-bench --bin repro`

use mcpat_bench::*;
use mcpat_tech::TechNode;

fn header(id: &str, title: &str) {
    println!();
    println!("=== {id}: {title} ===");
}

fn main() {
    header("T-V1..T-V4", "whole-chip validation (published vs modeled)");
    println!(
        "{:<12} {:>8} {:>9} {:>7}   {:>8} {:>9} {:>7}",
        "chip", "pub W", "model W", "err%", "pub mm2", "model mm2", "err%"
    );
    for row in validation_table() {
        println!(
            "{:<12} {:>8.1} {:>9.1} {:>6.1}%   {:>8.0} {:>9.0} {:>6.1}%",
            row.name,
            row.published_power_w,
            row.modeled_power_w,
            100.0 * row.power_error(),
            row.published_area_mm2,
            row.modeled_area_mm2,
            100.0 * row.area_error(),
        );
        for (name, published, modeled) in &row.shares {
            println!(
                "      {:<10} published {:>5.1}%  modeled {:>5.1}%",
                name,
                100.0 * published,
                100.0 * modeled
            );
        }
    }

    header(
        "T-V5",
        "runtime (typical) power vs peak on the design-target workload",
    );
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>14}",
        "chip", "peak W", "runtime W", "model ratio", "published"
    );
    for row in runtime_validation() {
        println!(
            "{:<12} {:>8.1} {:>10.1} {:>12.2} {:>14.2}",
            row.name,
            row.peak_w,
            row.runtime_w,
            row.runtime_w / row.peak_w,
            row.published_ratio,
        );
    }

    for (regime, tlp) in [
        ("abundant TLP", f64::INFINITY),
        ("limited TLP (32 threads)", 32.0),
    ] {
        header(
            "F-CS1/F-CS2",
            &format!("manycore case study: power & area per design point (22nm, {regime})"),
        );
        let points = case_study_points_with_tlp(TechNode::N22, tlp);
        println!(
            "{:<18} {:>8} {:>9} {:>9} {:>9} {:>12}",
            "point", "peak W", "run W", "mm2", "sec", "GIPS"
        );
        for p in &points {
            println!(
                "{:<18} {:>8.1} {:>9.1} {:>9.1} {:>9.4} {:>12.2}",
                p.name,
                p.peak_power_w,
                p.runtime_power_w,
                p.area_mm2,
                p.seconds,
                p.throughput_ips / 1e9,
            );
        }
        header("F-CS3/F-CS4", &format!("metric winners ({regime})"));
        for (metric, winner) in case_study_metrics(&points) {
            println!("  best under {:<6} : {winner}", metric.name());
        }
    }
    println!("  paper shape: the optimum flips with the workload regime — with");
    println!("  abundant TLP the sea of wimpy in-order cores wins every metric");
    println!("  (the Niagara thesis); when TLP is scarce the brawny OoO design");
    println!("  wins the performance-weighted metrics. Within each regime the");
    println!("  clustering optimum also differs between EDP and ED2P/D, and the");
    println!("  area term (EDAP/EDA2P) systematically narrows the gap toward the");
    println!("  smaller designs — the reason the paper argues area must enter");
    println!("  the objective.");

    header(
        "F-CS5",
        "case-study EDA2P winner across nodes (abundant TLP)",
    );
    for (node, winner) in case_study_across_nodes() {
        println!("  {:>5}: {winner}", node.to_string());
    }
    println!("  paper shape: the architectural optimum is stable across nodes when");
    println!("  the relative costs scale together.");

    header("F-TECH1", "technology scaling of a fixed 8-core chip");
    println!(
        "{:>6} {:>9} {:>10} {:>8} {:>8} {:>9}",
        "node", "total W", "dynamic W", "leak W", "leak %", "area mm2"
    );
    for r in tech_scaling() {
        println!(
            "{:>6} {:>9.1} {:>10.1} {:>8.1} {:>7.1}% {:>9.1}",
            r.node.to_string(),
            r.total_w,
            r.dynamic_w,
            r.leakage_w,
            100.0 * r.leakage_w / r.total_w,
            r.area_mm2,
        );
    }
    println!("  paper shape: area shrinks ~quadratically; leakage fraction grows.");

    header("F-TECH2", "device flavors at 32nm (HP / LSTP / LOP)");
    println!(
        "{:>6} {:>9} {:>12} {:>12} {:>10} {:>10}",
        "flavor", "FO4 ps", "1MB rd pJ", "1MB leak mW", "core W", "core leak"
    );
    for r in device_flavors() {
        println!(
            "{:>6} {:>9.1} {:>12.1} {:>12.3} {:>10.2} {:>10.3}",
            r.flavor.to_string(),
            r.fo4 * 1e12,
            r.array_read_j * 1e12,
            r.array_leakage_w * 1e3,
            r.core_peak_w,
            r.core_leakage_w,
        );
    }
    println!("  paper shape: LSTP ≈ orders-of-magnitude lower leakage, slower FO4;");
    println!("  LOP lowest dynamic energy via reduced Vdd.");

    header(
        "F-WIRE1",
        "interconnect projections (5mm repeated global wire)",
    );
    println!(
        "{:>6} {:>14} {:>12} {:>14}",
        "node", "projection", "ps/mm", "fJ/bit/mm"
    );
    for r in wire_projections() {
        println!(
            "{:>6} {:>14} {:>12.1} {:>14.1}",
            r.node.to_string(),
            r.projection.to_string(),
            r.delay_s_per_m * 1e12 * 1e-3,
            r.energy_j_per_m * 1e15 * 1e-3,
        );
    }
    println!("  paper shape: conservative wires are uniformly slower/hungrier and the");
    println!("  gap widens at smaller nodes.");

    header(
        "F-NOC1",
        "router cost vs flit width and VC count (32nm, 5 ports)",
    );
    println!(
        "{:>6} {:>5} {:>12} {:>10} {:>10}",
        "flit", "VCs", "pJ/flit", "area mm2", "leak mW"
    );
    for r in noc_sweep() {
        println!(
            "{:>6} {:>5} {:>12.2} {:>10.4} {:>10.2}",
            r.flit_bits,
            r.vcs,
            r.router_energy_j * 1e12,
            r.router_area_m2 * 1e6,
            r.router_leakage_w * 1e3,
        );
    }

    header(
        "F-CLK1",
        "clock-distribution share of chip power across nodes",
    );
    for r in clock_fraction() {
        println!(
            "  {:>6}: {:>5.1}%",
            r.node.to_string(),
            100.0 * r.clock_share
        );
    }

    header(
        "A-ABL1",
        "array partition optimizer ablation (2MB array, 45nm)",
    );
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "layout", "ns", "pJ/read", "mm2"
    );
    for r in array_ablation() {
        println!(
            "{:<28} {:>10.2} {:>10.1} {:>10.2}",
            r.label,
            r.access_time * 1e9,
            r.read_energy * 1e12,
            r.area * 1e6,
        );
    }

    header("A-ABL2", "power-management ablation (light duty, Niagara2)");
    for r in gating_ablation() {
        println!("  {:<28} {:>7.1} W", r.label, r.runtime_w);
    }
}
