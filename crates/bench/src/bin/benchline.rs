//! Tool-speed benchmark line: times the modeling stack itself (array
//! solves, core builds, chip builds, an exploration sweep) in three
//! execution modes — serial, thread-parallel, and warm solve-cache —
//! and writes `BENCH_toolspeed.json` for trend tracking in CI.
//!
//! Run with: `cargo run --release -p mcpat-bench --bin benchline [--quick] [--out PATH]`
//!
//! The JSON is stamped with the git revision and records the host's
//! available parallelism alongside every number: on a single-core
//! runner the parallel column necessarily matches serial, so compare
//! parallel speedups only across runs whose `host.available_parallelism`
//! agrees.

use mcpat::{explore, Budgets, MetricSet, Processor, ProcessorConfig};
use mcpat_array::{memo, ArraySpec, OptTarget};
use mcpat_mcore::config::CoreConfig;
use mcpat_mcore::core::CoreModel;
use mcpat_tech::{DeviceType, TechNode, TechParams};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts heap allocations so the benchmark can report allocations per
/// solve — the direct measure of the enumeration loop's cheapness.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter
// update has no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn die(msg: &str) -> ! {
    eprintln!("benchline: {msg}");
    std::process::exit(1)
}

/// Median wall-clock milliseconds of `reps` runs of `f`.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples.get(samples.len() / 2).copied().unwrap_or(f64::NAN)
}

/// Short git revision of the checkout, or `"unknown"` outside one (or
/// without git on PATH). Restricted to alphanumeric characters so it
/// embeds in the hand-written JSON without escaping.
fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| {
            s.trim()
                .chars()
                .filter(char::is_ascii_alphanumeric)
                .collect::<String>()
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| String::from("unknown"))
}

/// Allocations performed by one run of `f`.
fn allocs_of(mut f: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

struct Row {
    name: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
    warm_cache_ms: f64,
    allocs_serial: u64,
}

/// Times one workload in the three modes. `reps` runs per mode, median
/// reported. The solve cache is disabled for the serial and parallel
/// columns and pre-warmed for the warm column.
fn bench(name: &'static str, reps: usize, mut work: impl FnMut()) -> Row {
    // Serial: one thread, no cache.
    memo::set_enabled(false);
    mcpat_par::set_thread_override(1);
    work(); // warm code/branch caches before timing
    let serial_ms = median_ms(reps, &mut work);
    let allocs_serial = allocs_of(&mut work);

    // Parallel: default thread count, no cache.
    mcpat_par::set_thread_override(0);
    let parallel_ms = median_ms(reps, &mut work);

    // Warm cache: content-addressed solve cache on and populated.
    memo::set_enabled(true);
    memo::clear();
    work(); // populate
    let warm_cache_ms = median_ms(reps, &mut work);
    memo::set_auto();

    let row = Row {
        name,
        serial_ms,
        parallel_ms,
        warm_cache_ms,
        allocs_serial,
    };
    eprintln!(
        "{name:<22} serial {serial_ms:>9.3} ms | parallel {parallel_ms:>9.3} ms | warm {warm_cache_ms:>9.3} ms | {allocs_serial} allocs",
    );
    row
}

fn explore_candidates() -> Vec<ProcessorConfig> {
    (0..16u32)
        .map(|i| {
            ProcessorConfig::manycore(
                &format!("c{i}"),
                TechNode::N32,
                CoreConfig::generic_inorder(),
                2 + (i % 4) * 2,
                1 + (i % 4),
                u64::from(1 + (i % 4)) * 1024 * 1024,
            )
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_toolspeed.json", String::as_str);
    let reps = if quick { 3 } else { 7 };

    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let revision = git_revision();
    eprintln!(
        "benchline: revision {revision}, host parallelism {host_threads}, {reps} reps/mode{}",
        if quick { " (quick)" } else { "" }
    );

    let tech = TechParams::new(TechNode::N65, DeviceType::Hp, 360.0);
    let ok_or_die = |r: Result<mcpat_array::SolvedArray, mcpat_array::ArrayError>| {
        if let Err(e) = r {
            die(&format!("array solve failed: {e}"));
        }
    };

    let mut rows: Vec<Row> = Vec::new();
    for (name, kb) in [
        ("array_solve_32kb", 32u64),
        ("array_solve_2mb", 2048),
        ("array_solve_16mb", 16384),
    ] {
        let spec = ArraySpec::ram(kb * 1024, 64);
        rows.push(bench(name, reps, || {
            ok_or_die(spec.solve(&tech, OptTarget::EnergyDelay));
        }));
    }

    let ooo = CoreConfig::generic_ooo();
    rows.push(bench("core_build_ooo", reps, || {
        if let Err(e) = CoreModel::build(&tech, &ooo) {
            die(&format!("core build failed: {e}"));
        }
    }));

    for (name, cfg) in [
        ("chip_build_niagara2", ProcessorConfig::niagara2()),
        ("chip_build_tulsa", ProcessorConfig::tulsa()),
    ] {
        rows.push(bench(name, reps, || {
            if let Err(e) = Processor::build(&cfg) {
                die(&format!("chip build failed: {e}"));
            }
        }));
    }

    let cands = explore_candidates();
    let explore_reps = if quick { 1 } else { 3 };
    rows.push(bench("explore_16_candidates", explore_reps, || {
        let r = explore(&cands, Budgets::default(), |c| {
            MetricSet::from_power(10.0, 1.0, c.die_area())
        });
        if let Err(e) = r {
            die(&format!("exploration failed: {e}"));
        }
    }));

    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    let find = |n: &str| {
        rows.iter()
            .find(|r| r.name == n)
            .unwrap_or_else(|| die("missing benchmark row"))
    };
    let chip = find("chip_build_niagara2");
    let expl = find("explore_16_candidates");
    let chip_parallel_speedup = ratio(chip.serial_ms, chip.parallel_ms);
    let explore_parallel_speedup = ratio(expl.serial_ms, expl.parallel_ms);
    let chip_warm_speedup = ratio(chip.serial_ms, chip.warm_cache_ms);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"mcpat-benchline-v1\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"reps_per_mode\": {reps},");
    let _ = writeln!(json, "  \"revision\": \"{revision}\",");
    let _ = writeln!(
        json,
        "  \"host\": {{ \"available_parallelism\": {host_threads}, \"label\": \"{host_threads}cpu\" }},"
    );
    let _ = writeln!(json, "  \"units\": \"milliseconds, median of reps\",");
    let _ = writeln!(json, "  \"benchmarks\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"serial_ms\": {:.4}, \"parallel_ms\": {:.4}, \"warm_cache_ms\": {:.4}, \"allocs_serial\": {} }}{comma}",
            r.name, r.serial_ms, r.parallel_ms, r.warm_cache_ms, r.allocs_serial
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedups\": {{");
    let _ = writeln!(
        json,
        "    \"chip_build_parallel_vs_serial\": {chip_parallel_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "    \"explore_parallel_vs_serial\": {explore_parallel_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "    \"chip_build_warm_cache_vs_cold\": {chip_warm_speedup:.3}"
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    if let Err(e) = std::fs::write(out_path, &json) {
        die(&format!("cannot write {out_path}: {e}"));
    }
    eprintln!("benchline: wrote {out_path}");
}
