//! Tool-speed benchmark line: times the modeling stack itself (array
//! solves, core builds, chip builds, exploration sweeps, clock
//! bisection, streaming DSE sweeps) in three execution modes — serial,
//! thread-parallel, and warm solve-cache — and writes
//! `BENCH_toolspeed.json` for trend tracking in CI.
//!
//! Run with: `cargo run --release -p mcpat-bench --bin benchline
//! [--quick] [--out PATH] [--gate BASELINE.json]`
//!
//! `--gate` turns the run into a regression check against a previously
//! committed JSON: on a multi-core host the exploration sweep must not
//! be slower in parallel than serially, and when the baseline was
//! recorded on a host with the same CPU label *and* the same rep count
//! (`--quick` and full runs take different medians), no benchmark's
//! `serial_ms` may regress by more than 15% — tightened to 10% for the
//! cold `chip_build_*` rows, the floor under every sweep and daemon
//! scenario. Each row reports the heap allocations of one run in all
//! three modes (`allocs_serial`/`allocs_parallel`/`allocs_warm`), and
//! the `speedups` block carries `cold_build_speedup_vs_baseline`: the
//! geometric mean of the chip-build serial-median improvements over
//! the baseline JSON (0 when no same-label baseline is available).
//! A mismatched CPU label or
//! rep count skips the wall-clock comparison (the numbers are not
//! comparable) but still enforces the speedup invariant and two
//! host-independent overhead ceilings: a build inside an entered
//! `mcpat::obs::Collector` scope with tracing disabled must cost at
//! most 2% over a plain build, and a build inside an entered unbounded
//! `mcpat::guard::Budget` scope must cost at most 3% over a build
//! with no budget active. Two more host-independent gates cover the
//! design-space sweep: the streaming `mcpat::dse` engine must retire
//! candidates at least 5x faster than the naive per-candidate
//! full-build loop (both throughputs measured in this run, same serial
//! mode), and on a single-core host the parallel exploration path must
//! degrade to inline execution — zero worker-pool submissions and wall
//! clock within 25% of serial. A fifth host-independent gate covers
//! the `mcpat serve` daemon: a warm shared-cache request over loopback
//! TCP must complete at least 5x faster than the same request against
//! a cleared cache (the `serve` block records both latencies). Full (non-`--quick`) runs additionally
//! time one 10^5-candidate streaming sweep end to end, recorded in the
//! `dse` block.
//!
//! The JSON is stamped with the git revision and records the host's
//! available parallelism alongside every number: on a single-core
//! runner the parallel column necessarily matches serial, so compare
//! parallel speedups only across runs whose `host.available_parallelism`
//! agrees.

use mcpat::{
    explore, explore_batch, max_clock_under_power_budget, register_alloc_probe, AxisGrid, Budgets,
    DseEvaluator, DseOptions, DsePerf, FrontierPoint, MetricSet, ParetoFrontier, Processor,
    ProcessorConfig, WorkloadModel,
};
use mcpat_array::{memo, ArraySpec, OptTarget};
use mcpat_mcore::config::CoreConfig;
use mcpat_mcore::core::CoreModel;
use mcpat_tech::{DeviceType, TechNode, TechParams};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts heap allocations so the benchmark can report allocations per
/// solve — the direct measure of the enumeration loop's cheapness.
/// A process-global total feeds the per-row `allocs_serial` column; a
/// per-thread count feeds the `mcpat-obs` probe, whose contract is
/// "the calling thread's allocations" (each thread flushes its own
/// delta to the scope chain active on it).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation to `System` unchanged; the counter
// updates have no effect on allocation behavior (`try_with` shrugs off
// TLS teardown instead of re-entering the allocator or panicking).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn die(msg: &str) -> ! {
    eprintln!("benchline: {msg}");
    std::process::exit(1)
}

/// Median wall-clock milliseconds of `reps` runs of `f`.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples.get(samples.len() / 2).copied().unwrap_or(f64::NAN)
}

/// Short git revision of the checkout, or `"unknown"` outside one (or
/// without git on PATH). Restricted to alphanumeric characters so it
/// embeds in the hand-written JSON without escaping.
fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| {
            s.trim()
                .chars()
                .filter(char::is_ascii_alphanumeric)
                .collect::<String>()
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| String::from("unknown"))
}

/// Allocations performed by one run of `f`.
fn allocs_of(mut f: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Reader handed to [`register_alloc_probe`] so scoped collectors
/// (`BuildPerf`/`ExplorePerf::allocs`) can bill each thread's
/// allocations to the scope active on that thread.
fn current_thread_allocs() -> u64 {
    THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0)
}

struct Row {
    name: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
    warm_cache_ms: f64,
    allocs_serial: u64,
    allocs_parallel: u64,
    allocs_warm: u64,
}

/// Times one workload in the three modes. `reps` runs per mode, median
/// reported. The solve cache is disabled for the serial and parallel
/// columns and pre-warmed for the warm column. Each mode also reports
/// the heap allocations of one run, so arena wins on the cold path are
/// visible in every mode, not just serial.
fn bench(name: &'static str, reps: usize, mut work: impl FnMut()) -> Row {
    // Serial: one thread, no cache.
    memo::set_enabled(false);
    mcpat_par::set_thread_override(1);
    work(); // warm code/branch caches before timing
    let serial_ms = median_ms(reps, &mut work);
    let allocs_serial = allocs_of(&mut work);

    // Parallel: default thread count, no cache.
    mcpat_par::set_thread_override(0);
    let parallel_ms = median_ms(reps, &mut work);
    let allocs_parallel = allocs_of(&mut work);

    // Warm cache: content-addressed solve cache on and populated.
    memo::set_enabled(true);
    memo::clear();
    work(); // populate
    let warm_cache_ms = median_ms(reps, &mut work);
    let allocs_warm = allocs_of(&mut work);
    memo::set_auto();

    let row = Row {
        name,
        serial_ms,
        parallel_ms,
        warm_cache_ms,
        allocs_serial,
        allocs_parallel,
        allocs_warm,
    };
    eprintln!(
        "{name:<22} serial {serial_ms:>9.3} ms | parallel {parallel_ms:>9.3} ms | warm {warm_cache_ms:>9.3} ms | allocs {allocs_serial}/{allocs_parallel}/{allocs_warm}",
    );
    row
}

fn explore_candidates() -> Vec<ProcessorConfig> {
    (0..16u32)
        .map(|i| {
            ProcessorConfig::manycore(
                &format!("c{i}"),
                TechNode::N32,
                CoreConfig::generic_inorder(),
                2 + (i % 4) * 2,
                1 + (i % 4),
                u64::from(1 + (i % 4)) * 1024 * 1024,
            )
        })
        .collect()
}

/// The pre-incremental clock bisection: every probe rebuilds the full
/// chip. Kept as the benchmark baseline `clock_bisection_incremental`
/// is measured against.
fn bisection_full_rebuild(
    config: &ProcessorConfig,
    budget_w: f64,
    lo_hz: f64,
    hi_hz: f64,
) -> Option<f64> {
    let power_at = |clock: f64| -> f64 {
        let mut cfg = config.clone();
        cfg.clock_hz = clock;
        cfg.core.clock_hz = clock;
        match Processor::build(&cfg) {
            Ok(chip) => chip.peak_power().total(),
            Err(e) => die(&format!("bisection build failed: {e}")),
        }
    };
    if power_at(lo_hz) > budget_w {
        return None;
    }
    if power_at(hi_hz) <= budget_w {
        return Some(hi_hz);
    }
    let (mut lo, mut hi) = (lo_hz, hi_hz);
    for _ in 0..12 {
        let mid = 0.5 * (lo + hi);
        if power_at(mid) <= budget_w {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Ceiling on the tracing-disabled observability overhead: a build
/// inside an entered collector (spans compiled in but inert, counters
/// billed per-scope) may cost at most 2% over the identical build with
/// no scope active. The median measures ~0.3%; the headroom absorbs
/// shared-runner noise on ~1 ms builds while still catching any
/// accidental per-event work on the disabled path.
const MAX_TRACE_DISABLED_OVERHEAD: f64 = 1.02;

/// Measures the marginal cost of the observability layer with tracing
/// disabled: the ratio of a cold-cache serial chip build run inside an
/// entered [`mcpat::obs::Collector`] scope to the same build with no
/// scope active. The solve cache is cleared before every sample so each
/// build does its full solver work — the representative workload the
/// overhead ceiling is about. (A warm-cache rebuild finishes in microseconds,
/// where per-event counter billing amplifies to a few percent relative
/// but only single-digit microseconds absolute; gating on that would
/// flake on timer noise without protecting anything real.) Each
/// interleaved pair yields one scoped/plain ratio from two temporally
/// adjacent builds — the same frequency and CPU-steal regime — and the
/// probe reports the median ratio, which discards the pairs a
/// scheduling blip lands in. (A per-side `min` is not robust here: the
/// two minima come from different instants, so a brief fast window
/// covering only one side skews the ratio by several percent.) The
/// order within a pair alternates so the second build's warmer caches
/// do not bias the ratio toward either side.
fn trace_disabled_overhead_ratio() -> f64 {
    mcpat::obs::set_tracing(false);
    let cfg = ProcessorConfig::niagara2();
    let build = || {
        if let Err(e) = Processor::build(&cfg) {
            die(&format!("overhead-probe build failed: {e}"));
        }
    };
    mcpat_par::set_thread_override(1);
    memo::set_enabled(true);
    memo::clear();
    build(); // warm the code paths (the cache is cleared per sample)
    let collector = mcpat::obs::Collector::new();
    let mut ratios: Vec<f64> = Vec::with_capacity(100);
    for pair in 0..100 {
        let timed = |scope: bool| {
            memo::clear();
            let t = Instant::now();
            if scope {
                let _scope = collector.enter();
                build();
            } else {
                build();
            }
            t.elapsed().as_secs_f64()
        };
        // Alternate which side runs first: the second build of a pair
        // sees warmer caches, and a fixed order would bake that bias
        // into every ratio.
        let scope_first = pair % 2 == 0;
        let first = timed(scope_first);
        let second = timed(!scope_first);
        let (scoped, plain) = if scope_first {
            (first, second)
        } else {
            (second, first)
        };
        if plain > 0.0 {
            ratios.push(scoped / plain);
        }
    }
    memo::set_auto();
    mcpat_par::set_thread_override(0);
    ratios.sort_by(f64::total_cmp);
    ratios.get(ratios.len() / 2).copied().unwrap_or(1.0)
}

/// Ceiling on the budget-checkpoint overhead: a build running inside an
/// entered (but unbounded) `mcpat::guard::Budget` scope — every
/// checkpoint live, none ever tripping — may cost at most 3% over the
/// identical build with no budget active (the disabled path, where a
/// checkpoint is a single thread-local load). The live chain walk
/// measures ~1.5% on a cold build; the gate exists to catch a
/// checkpoint accidentally growing O(n) work, not to litigate
/// nanoseconds under shared-runner noise.
const MAX_GUARD_DISABLED_OVERHEAD: f64 = 1.03;

/// Measures the marginal cost of budget checkpoints on the cold-build
/// path: the ratio of a cold-cache serial chip build inside an entered
/// unbounded [`mcpat::guard::Budget`] scope to the same build with no
/// budget active. Methodology matches [`trace_disabled_overhead_ratio`]:
/// the cache is cleared per sample so every checkpoint in the solver
/// sweep actually executes, and the reported number is the median of
/// 50 interleaved pairwise scoped/plain ratios.
fn guard_disabled_overhead_ratio() -> f64 {
    let cfg = ProcessorConfig::niagara2();
    let build = || {
        if let Err(e) = Processor::build(&cfg) {
            die(&format!("overhead-probe build failed: {e}"));
        }
    };
    mcpat_par::set_thread_override(1);
    memo::set_enabled(true);
    memo::clear();
    build(); // warm the code paths (the cache is cleared per sample)
    let budget = mcpat::guard::Budget::unbounded();
    let mut ratios: Vec<f64> = Vec::with_capacity(100);
    for pair in 0..100 {
        let timed = |scope: bool| {
            memo::clear();
            let t = Instant::now();
            if scope {
                let _scope = budget.enter();
                build();
            } else {
                build();
            }
            t.elapsed().as_secs_f64()
        };
        // Alternate which side runs first (see trace probe).
        let scope_first = pair % 2 == 0;
        let first = timed(scope_first);
        let second = timed(!scope_first);
        let (scoped, plain) = if scope_first {
            (first, second)
        } else {
            (second, first)
        };
        if plain > 0.0 {
            ratios.push(scoped / plain);
        }
    }
    memo::set_auto();
    mcpat_par::set_thread_override(0);
    ratios.sort_by(f64::total_cmp);
    ratios.get(ratios.len() / 2).copied().unwrap_or(1.0)
}

/// Runs one tracing-enabled chip build and prints its per-phase span
/// summary, then disables tracing again. Purely informational: the
/// bit-identity of traced builds is asserted by `tests/perf_identity.rs`.
fn print_span_summary() {
    mcpat::obs::set_tracing(true);
    let collector = mcpat::obs::Collector::new();
    {
        let _scope = collector.enter();
        if let Err(e) = Processor::build(&ProcessorConfig::niagara2()) {
            die(&format!("traced build failed: {e}"));
        }
    }
    mcpat::obs::set_tracing(false);
    let trace = collector.trace();
    eprintln!(
        "benchline: traced niagara2 build, {} span(s):",
        trace.spans.len()
    );
    for s in &trace.spans {
        eprintln!(
            "benchline:   {:<18} {:>9.3} ms | cache {} hit(s) / {} miss(es) | {} alloc(s) | {} relaxation(s)",
            s.path,
            s.wall_s * 1e3,
            s.solve_cache_hits,
            s.solve_cache_misses,
            s.allocs,
            s.relaxations
        );
    }
}

/// Serial median of one named benchmark row in a baseline JSON.
fn baseline_serial_ms(baseline: &serde_json::Value, name: &str) -> Option<f64> {
    baseline
        .get("benchmarks")
        .and_then(serde_json::Value::as_seq)?
        .iter()
        .find_map(|b| {
            if b.get("name").and_then(serde_json::Value::as_str)? == name {
                b.get("serial_ms").and_then(serde_json::Value::as_f64)
            } else {
                None
            }
        })
}

/// Cold-build speedup of this run over a baseline JSON: the geometric
/// mean, across the `chip_build_*` rows, of baseline cold serial
/// median over this run's. Returns 0.0 (meaning "no comparable
/// baseline") when the baseline is absent, was recorded on a host with
/// a different CPU label, or shares no chip-build rows — wall-clock
/// medians from different hosts are not comparable.
fn cold_build_speedup_vs_baseline(
    baseline: Option<&serde_json::Value>,
    rows: &[Row],
    host_label: &str,
) -> f64 {
    let Some(baseline) = baseline else { return 0.0 };
    let base_label = baseline
        .get("host")
        .and_then(|h| h.get("label"))
        .and_then(serde_json::Value::as_str)
        .unwrap_or("");
    if base_label != host_label {
        return 0.0;
    }
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for row in rows {
        if !row.name.starts_with("chip_build_") || row.serial_ms <= 0.0 {
            continue;
        }
        let Some(base_ms) = baseline_serial_ms(baseline, row.name) else {
            continue;
        };
        if base_ms > 0.0 {
            log_sum += (base_ms / row.serial_ms).ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / f64::from(n)).exp()
    }
}

/// Floor on the streaming DSE engine's throughput advantage over the
/// naive per-candidate full-build loop, measured within one run in the
/// same execution mode (so the ratio holds on any host).
const MIN_DSE_STREAMING_SPEEDUP: f64 = 5.0;

/// Floor on the serve daemon's warm-request advantage: a request whose
/// solves are all resident in the shared cache must complete at least
/// this much faster than the same request against a cleared cache.
/// Both latencies go over a real loopback TCP round trip in this run,
/// so the ratio is host-independent.
const MIN_SERVE_WARM_SPEEDUP: f64 = 5.0;

/// Median request latencies against an in-process `mcpat serve`
/// daemon over real loopback TCP: `(cold_ms, warm_ms)`. Cold clears
/// the shared solve cache before every request (each build does its
/// full solver work); warm leaves the cache populated, so the request
/// pays only lookup + relabel + render + the wire round trip. Serial
/// requests on one connection — the concurrency story is covered by
/// the daemon's own tests; this row times the cache seam.
fn serve_request_latencies(reps: usize) -> (f64, f64) {
    use std::io::{BufRead as _, BufReader, Write as _};

    let server = mcpat_serve::Server::bind(
        "127.0.0.1:0",
        &mcpat_serve::ServeOptions { max_inflight: 4 },
    )
    .unwrap_or_else(|e| die(&format!("serve probe: cannot bind loopback: {e}")));
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        if let Err(e) = server.run() {
            eprintln!("benchline: serve probe server error: {e}");
        }
    });

    let stream = std::net::TcpStream::connect(handle.addr())
        .unwrap_or_else(|e| die(&format!("serve probe: cannot connect: {e}")));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .unwrap_or_else(|e| die(&format!("serve probe: cannot clone stream: {e}"))),
    );
    let mut stream = stream;
    let mut roundtrip = |line: &str| {
        // One write per request: a trailing-newline second write would
        // reintroduce the Nagle stall the daemon disables server-side.
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        if stream.write_all(&buf).is_err() {
            die("serve probe: request write failed");
        }
        let mut resp = String::new();
        match reader.read_line(&mut resp) {
            Ok(n) if n > 0 => {}
            _ => die("serve probe: server closed the connection"),
        }
        if !resp.contains("\"status\":\"ok\"") {
            die(&format!("serve probe: request failed: {}", resp.trim()));
        }
    };
    let request = "{\"type\":\"evaluate\",\"preset\":\"niagara2\"}";

    mcpat_par::set_thread_override(0);
    memo::set_enabled(true);
    memo::clear();
    roundtrip(request); // warm code paths; leaves the cache populated
    let warm_ms = median_ms(reps, || roundtrip(request));
    let cold_ms = median_ms(reps, || {
        memo::clear();
        roundtrip(request);
    });
    memo::set_auto();

    handle.request_drain();
    let _ = join.join();
    (cold_ms, warm_ms)
}

/// Regression gate: compares this run's rows against a committed
/// baseline JSON. Returns every violated invariant.
#[allow(clippy::too_many_arguments)]
fn gate_failures(
    baseline: &serde_json::Value,
    rows: &[Row],
    explore_parallel_speedup: f64,
    trace_overhead_ratio: f64,
    guard_overhead_ratio: f64,
    dse_streaming_vs_naive: f64,
    serve_warm_vs_cold: f64,
    explore_pool_submissions: u64,
    host_threads: usize,
    host_label: &str,
    reps: usize,
) -> Vec<String> {
    let mut failures = Vec::new();
    if host_threads > 1 && explore_parallel_speedup < 1.0 {
        failures.push(format!(
            "explore_parallel_vs_serial is {explore_parallel_speedup:.3} (< 1.0) on a \
             {host_threads}-way host: the parallel path must not lose to serial"
        ));
    }
    // Single-core hosts pin the other side of the same invariant: the
    // parallel path must degrade to inline execution — no pool
    // submissions, and wall clock no worse than serial beyond a 25%
    // noise allowance. The pathology this catches (a spawned-then-idle
    // pool round-tripping every task through the queue) cost ~2x, so
    // the wide margin keeps 3-rep quick runs on a busy host from
    // flaking while still failing loudly on the real regression; the
    // zero-submission check below is the exact half of the invariant.
    if host_threads == 1 {
        if explore_parallel_speedup < 1.0 / 1.25 {
            failures.push(format!(
                "explore_parallel_vs_serial is {explore_parallel_speedup:.3} on a single-core \
                 host: the parallel path must degrade to inline execution (>= 0.8)"
            ));
        }
        if explore_pool_submissions > 0 {
            failures.push(format!(
                "explore submitted {explore_pool_submissions} task(s) to the worker pool on a \
                 single-core host: the parallel path must run inline"
            ));
        }
    }
    // Host-independent: both throughputs are measured in this run, in
    // the same serial memo-off mode.
    if dse_streaming_vs_naive < MIN_DSE_STREAMING_SPEEDUP {
        failures.push(format!(
            "dse streaming_vs_naive_speedup is {dse_streaming_vs_naive:.2} \
             (< {MIN_DSE_STREAMING_SPEEDUP}): the streaming engine must beat the naive \
             per-candidate full-build sweep by 5x"
        ));
    }
    // Host-independent: both request latencies go over this run's own
    // loopback daemon, so the ratio holds on any host.
    if serve_warm_vs_cold < MIN_SERVE_WARM_SPEEDUP {
        failures.push(format!(
            "serve warm_vs_cold_speedup is {serve_warm_vs_cold:.2} \
             (< {MIN_SERVE_WARM_SPEEDUP}): a warm shared-cache request must beat a \
             cold evaluation by 5x"
        ));
    }
    // Host-independent: the ratio compares two builds on *this* host,
    // so it is enforced even when the wall-clock comparison is skipped.
    if trace_overhead_ratio > MAX_TRACE_DISABLED_OVERHEAD {
        failures.push(format!(
            "trace_disabled_overhead_ratio is {trace_overhead_ratio:.4} \
             (> {MAX_TRACE_DISABLED_OVERHEAD}): disabled tracing must cost <= 2%"
        ));
    }
    if guard_overhead_ratio > MAX_GUARD_DISABLED_OVERHEAD {
        failures.push(format!(
            "guard_disabled_overhead_ratio is {guard_overhead_ratio:.4} \
             (> {MAX_GUARD_DISABLED_OVERHEAD}): live budget checkpoints must cost <= 3%"
        ));
    }
    let base_label = baseline
        .get("host")
        .and_then(|h| h.get("label"))
        .and_then(serde_json::Value::as_str)
        .unwrap_or("");
    if base_label != host_label {
        eprintln!(
            "benchline: gate skipped: CPU-label mismatch (baseline host \"{base_label}\" \
             != \"{host_label}\"; wall-clock serial_ms is not comparable)"
        );
        return failures;
    }
    let base_reps = baseline
        .get("reps_per_mode")
        .and_then(serde_json::Value::as_f64)
        .unwrap_or(0.0);
    if base_reps != reps as f64 {
        eprintln!(
            "benchline: gate skips serial_ms comparison (baseline took the median of \
             {base_reps} reps, this run {reps}; medians are not comparable)"
        );
        return failures;
    }
    let base_rows = baseline
        .get("benchmarks")
        .and_then(serde_json::Value::as_seq)
        .unwrap_or(&[]);
    for row in rows {
        let base_ms = base_rows.iter().find_map(|b| {
            let name = b.get("name").and_then(serde_json::Value::as_str)?;
            if name == row.name {
                b.get("serial_ms").and_then(serde_json::Value::as_f64)
            } else {
                None
            }
        });
        // Rows the baseline predates are informational only.
        let Some(base_ms) = base_ms else { continue };
        // The cold chip builds are the floor under every sweep and
        // daemon scenario, so they get a tighter leash (10%) than the
        // blanket 15% noise allowance.
        let (limit, pct) = if row.name.starts_with("chip_build_") {
            (1.10, 10)
        } else {
            (1.15, 15)
        };
        if base_ms > 0.0 && row.serial_ms > base_ms * limit {
            failures.push(format!(
                "{}: serial {:.3} ms regressed more than {pct}% over baseline {:.3} ms",
                row.name, row.serial_ms, base_ms
            ));
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_toolspeed.json", String::as_str);
    let gate_path = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1));
    let reps = if quick { 3 } else { 7 };
    register_alloc_probe(current_thread_allocs);

    // lint: allow(L011, host metadata recorded in the report header so runs are only compared across equal hosts; no result depends on it)
    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let revision = git_revision();
    eprintln!(
        "benchline: revision {revision}, host parallelism {host_threads}, {reps} reps/mode{}",
        if quick { " (quick)" } else { "" }
    );

    let tech = TechParams::new(TechNode::N65, DeviceType::Hp, 360.0);
    let ok_or_die = |r: Result<mcpat_array::SolvedArray, mcpat_array::ArrayError>| {
        if let Err(e) = r {
            die(&format!("array solve failed: {e}"));
        }
    };

    let mut rows: Vec<Row> = Vec::new();
    for (name, kb) in [
        ("array_solve_32kb", 32u64),
        ("array_solve_2mb", 2048),
        ("array_solve_16mb", 16384),
    ] {
        let spec = ArraySpec::ram(kb * 1024, 64);
        rows.push(bench(name, reps, || {
            ok_or_die(spec.solve(&tech, OptTarget::EnergyDelay));
        }));
    }

    let ooo = CoreConfig::generic_ooo();
    rows.push(bench("core_build_ooo", reps, || {
        if let Err(e) = CoreModel::build(&tech, &ooo) {
            die(&format!("core build failed: {e}"));
        }
    }));

    for (name, cfg) in [
        ("chip_build_niagara2", ProcessorConfig::niagara2()),
        ("chip_build_tulsa", ProcessorConfig::tulsa()),
    ] {
        rows.push(bench(name, reps, || {
            if let Err(e) = Processor::build(&cfg) {
                die(&format!("chip build failed: {e}"));
            }
        }));
    }

    let cands = explore_candidates();
    let explore_reps = if quick { 1 } else { 3 };
    rows.push(bench("explore_16_candidates", explore_reps, || {
        let r = explore(&cands, Budgets::default(), |c| {
            MetricSet::from_power(10.0, 1.0, c.die_area())
        });
        if let Err(e) = r {
            die(&format!("exploration failed: {e}"));
        }
    }));

    rows.push(bench("explore_batch_16_candidates", explore_reps, || {
        let r = explore_batch(&cands, Budgets::default(), |c| {
            MetricSet::from_power(10.0, 1.0, c.die_area())
        });
        if let Err(e) = r {
            die(&format!("batched exploration failed: {e}"));
        }
    }));

    let clk_cfg = ProcessorConfig::manycore(
        "clk",
        TechNode::N32,
        CoreConfig::generic_inorder(),
        4,
        2,
        1024 * 1024,
    );
    rows.push(bench("clock_bisection_full", explore_reps, || {
        if bisection_full_rebuild(&clk_cfg, 25.0, 0.5e9, 6.0e9).is_none() {
            die("full-rebuild bisection found no feasible clock");
        }
    }));
    rows.push(bench("clock_bisection_incremental", explore_reps, || {
        match max_clock_under_power_budget(&clk_cfg, 25.0, 0.5e9, 6.0e9) {
            Ok(Some(_)) => {}
            Ok(None) => die("incremental bisection found no feasible clock"),
            Err(e) => die(&format!("incremental bisection failed: {e}")),
        }
    }));

    // Streaming DSE sweep vs the naive per-candidate full build. Both
    // rows walk the same axes; the naive baseline samples a 10-clock
    // slice (10^3 candidates) because building every candidate from
    // scratch at 10^4 scale would dominate the whole benchline run —
    // the gate compares candidates/sec, so the sample sizes need not
    // match.
    let dse_axes = |clocks: usize| {
        let step = 2.0e9 / (clocks.max(2) - 1) as f64;
        AxisGrid::manycore(
            vec![TechNode::N45, TechNode::N32],
            vec![DeviceType::Hp, DeviceType::Lop],
            vec![2, 4, 8, 12, 16],
            vec![512 * 1024, 1 << 20, 2 << 20, 4 << 20, 8 << 20],
            (0..clocks).map(|i| 1.0e9 + step * i as f64).collect(),
        )
    };
    let dse_grid = dse_axes(100); // 2 x 2 x 5 x 5 x 100 = 10^4 candidates
    let mut dse_perf = DsePerf::default();
    rows.push(bench(
        "dse_10k_candidates",
        explore_reps,
        || match mcpat::dse(
            &dse_grid,
            &DseOptions::default(),
            &mut WorkloadModel::default(),
        ) {
            Ok(r) => dse_perf = r.perf,
            Err(e) => die(&format!("streaming dse sweep failed: {e}")),
        },
    ));

    let naive_grid = dse_axes(10); // 10^3-candidate full-build sample
    rows.push(bench("dse_naive_1k_fullbuild", explore_reps, || {
        let mut frontier = ParetoFrontier::new();
        let mut eval = WorkloadModel::default();
        for cursor in 0..naive_grid.total() {
            if let Err(e) = mcpat::guard::check() {
                die(&format!("naive sweep budget error: {e}"));
            }
            let Some(cfg) = naive_grid.config_at(cursor) else {
                die("naive sweep enumerated past the grid");
            };
            let chip = match Processor::build(&cfg) {
                Ok(chip) => chip,
                Err(e) => die(&format!("naive sweep build failed: {e}")),
            };
            let metrics = eval.evaluate(&chip);
            frontier.offer(FrontierPoint {
                name: cfg.name,
                cursor,
                area: chip.die_area(),
                peak_power: chip.peak_power().total(),
                metrics,
            });
        }
    }));

    // The full 10^5-candidate sweep the issue's completion criterion is
    // about: run once at the host's default thread count, wall clock
    // only (a benched median would triple the cost for no extra
    // information). Skipped in quick mode.
    let (sweep_100k_ms, sweep_100k_cands) = if quick {
        (0.0, 0u64)
    } else {
        let grid = dse_axes(1000); // 2 x 2 x 5 x 5 x 1000 = 10^5
        memo::set_auto();
        mcpat_par::set_thread_override(0);
        let t = Instant::now();
        match mcpat::dse(&grid, &DseOptions::default(), &mut WorkloadModel::default()) {
            Ok(r) => {
                let ms = t.elapsed().as_secs_f64() * 1e3;
                eprintln!(
                    "benchline: 10^5-candidate streaming sweep in {ms:.0} ms ({:.0} candidates/s): \
                     {} pruned, {} probes, {} full builds, frontier {}",
                    grid.total() as f64 / (ms / 1e3),
                    r.perf.pruned,
                    r.perf.probes,
                    r.perf.full_builds,
                    r.frontier.len()
                );
                (ms, grid.total())
            }
            Err(e) => die(&format!("10^5-candidate dse sweep failed: {e}")),
        }
    };

    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    let find = |n: &str| {
        rows.iter()
            .find(|r| r.name == n)
            .unwrap_or_else(|| die("missing benchmark row"))
    };
    let chip = find("chip_build_niagara2");
    let expl = find("explore_16_candidates");
    let batch = find("explore_batch_16_candidates");
    let bisect_full = find("clock_bisection_full");
    let bisect_incr = find("clock_bisection_incremental");
    let chip_parallel_speedup = ratio(chip.serial_ms, chip.parallel_ms);
    let explore_parallel_speedup = ratio(expl.serial_ms, expl.parallel_ms);
    let chip_warm_speedup = ratio(chip.serial_ms, chip.warm_cache_ms);
    let batch_vs_explore_speedup = ratio(expl.serial_ms, batch.serial_ms);
    let bisection_speedup = ratio(bisect_full.serial_ms, bisect_incr.serial_ms);

    // DSE throughput, compared within this run in the same mode
    // (serial, memo off) so the ratio is host-independent: how many
    // candidates per second the streaming engine retires vs the naive
    // loop that full-builds every candidate.
    let dse_row = find("dse_10k_candidates");
    let naive_row = find("dse_naive_1k_fullbuild");
    let dse_cands_per_sec = ratio(dse_grid.total() as f64, dse_row.serial_ms / 1e3);
    let naive_cands_per_sec = ratio(naive_grid.total() as f64, naive_row.serial_ms / 1e3);
    let dse_streaming_vs_naive = ratio(dse_cands_per_sec, naive_cands_per_sec);
    let dse_prune_rate = ratio(dse_perf.pruned as f64, dse_perf.candidates as f64);
    let dse_probe_vs_full = ratio(dse_perf.probes as f64, dse_perf.full_builds.max(1) as f64);
    eprintln!(
        "benchline: dse streaming {dse_cands_per_sec:.0} candidates/s vs naive \
         {naive_cands_per_sec:.0} ({dse_streaming_vs_naive:.1}x); prune rate \
         {dse_prune_rate:.3}, {dse_probe_vs_full:.0} probes per full build"
    );

    // One parallel-mode exploration with the pool's submission counter
    // bracketed around it. On a single-core host the parallel path must
    // degrade to fully inline execution — zero tasks handed to the
    // worker pool (the 1-CPU regression the explore gate below pins);
    // multi-core hosts record the count informationally.
    let explore_pool_submissions = {
        mcpat_par::set_thread_override(0);
        let before = mcpat_par::pool::stats().submitted;
        let r = explore(&cands, Budgets::default(), |c| {
            MetricSet::from_power(10.0, 1.0, c.die_area())
        });
        if let Err(e) = r {
            die(&format!("pool-probe exploration failed: {e}"));
        }
        mcpat_par::pool::stats().submitted - before
    };
    eprintln!(
        "benchline: parallel-mode explore submitted {explore_pool_submissions} pool task(s) \
         on this {host_threads}-way host"
    );

    // Baseline for the cold-build speedup row: the gate baseline when
    // one was named, else whatever JSON the out path currently holds
    // (the committed baseline, when regenerating in place). Read
    // before the write below replaces it.
    let baseline_for_speedup: Option<serde_json::Value> = gate_path
        .map(String::as_str)
        .into_iter()
        .chain(std::iter::once(out_path))
        .find_map(|p| {
            let text = std::fs::read_to_string(p).ok()?;
            serde_json::from_str(&text).ok()
        });
    let cold_build_speedup = cold_build_speedup_vs_baseline(
        baseline_for_speedup.as_ref(),
        &rows,
        &format!("{host_threads}cpu"),
    );
    if cold_build_speedup > 0.0 {
        eprintln!(
            "benchline: cold chip builds run {cold_build_speedup:.3}x the baseline's serial medians"
        );
    } else {
        eprintln!(
            "benchline: no comparable baseline for the cold-build speedup row (recorded as 0)"
        );
    }

    let trace_overhead_ratio = trace_disabled_overhead_ratio();
    eprintln!(
        "benchline: trace-disabled overhead ratio {trace_overhead_ratio:.4} \
         (scoped cold build vs plain; gate ceiling {MAX_TRACE_DISABLED_OVERHEAD})"
    );
    let guard_overhead_ratio = guard_disabled_overhead_ratio();
    eprintln!(
        "benchline: guard-disabled overhead ratio {guard_overhead_ratio:.4} \
         (budget-scoped cold build vs plain; gate ceiling {MAX_GUARD_DISABLED_OVERHEAD})"
    );

    // Serve daemon round-trip latency: cold (cache cleared per request)
    // vs warm (every solve resident in the shared cache), both over a
    // real loopback TCP connection to an in-process daemon.
    let (serve_cold_ms, serve_warm_ms) = serve_request_latencies(reps);
    let serve_warm_vs_cold = ratio(serve_cold_ms, serve_warm_ms);
    eprintln!(
        "benchline: serve request cold {serve_cold_ms:.3} ms | warm shared-cache \
         {serve_warm_ms:.3} ms ({serve_warm_vs_cold:.1}x; gate floor {MIN_SERVE_WARM_SPEEDUP})"
    );
    print_span_summary();

    // Lint wall time: the full workspace self-lint, cold (every file
    // re-analyzed) vs warm (every file served from the content-hash
    // facts cache, cross-file passes still live). The warm closure
    // reloads the cache file each rep — that is what a real
    // `cargo lint --cache` run pays.
    let lint_srcs = mcpat_lint::collect_workspace_sources(&mcpat_lint::default_root())
        .unwrap_or_else(|e| die(&format!("cannot enumerate lint sources: {e}")));
    let lint_cold_ms = median_ms(reps, || {
        let _ = mcpat_lint::lint_sources(&lint_srcs);
    });
    let lint_cache_path =
        std::env::temp_dir().join(format!("benchline-lint-cache-{revision}.json"));
    let mut seed_cache = mcpat_lint::cache::Cache::default();
    let _ = mcpat_lint::lint_sources_cached(&lint_srcs, &mut seed_cache);
    if let Err(e) = seed_cache.store(&lint_cache_path) {
        die(&format!("cannot write lint cache: {e}"));
    }
    let lint_warm_ms = median_ms(reps, || {
        let mut cache = mcpat_lint::cache::Cache::load(&lint_cache_path);
        let _ = mcpat_lint::lint_sources_cached(&lint_srcs, &mut cache);
    });
    let _ = std::fs::remove_file(&lint_cache_path);
    eprintln!(
        "benchline: workspace self-lint cold {lint_cold_ms:.3} ms | warm-cache {lint_warm_ms:.3} ms ({} files)",
        lint_srcs.len()
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"mcpat-benchline-v1\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"reps_per_mode\": {reps},");
    let _ = writeln!(json, "  \"revision\": \"{revision}\",");
    let _ = writeln!(
        json,
        "  \"host\": {{ \"available_parallelism\": {host_threads}, \"label\": \"{host_threads}cpu\" }},"
    );
    let _ = writeln!(json, "  \"units\": \"milliseconds, median of reps\",");
    let _ = writeln!(
        json,
        "  \"trace\": {{ \"disabled_overhead_ratio\": {trace_overhead_ratio:.4}, \
         \"max_allowed_ratio\": {MAX_TRACE_DISABLED_OVERHEAD} }},"
    );
    let _ = writeln!(
        json,
        "  \"guard\": {{ \"disabled_overhead_ratio\": {guard_overhead_ratio:.4}, \
         \"max_allowed_ratio\": {MAX_GUARD_DISABLED_OVERHEAD} }},"
    );
    let _ = writeln!(
        json,
        "  \"lint\": {{ \"files\": {}, \"cold_ms\": {lint_cold_ms:.4}, \"warm_cache_ms\": {lint_warm_ms:.4} }},",
        lint_srcs.len()
    );
    let _ = writeln!(
        json,
        "  \"serve\": {{ \"cold_request_ms\": {serve_cold_ms:.4}, \
         \"warm_request_ms\": {serve_warm_ms:.4}, \
         \"warm_vs_cold_speedup\": {serve_warm_vs_cold:.2}, \
         \"min_allowed_speedup\": {MIN_SERVE_WARM_SPEEDUP} }},"
    );
    let _ = writeln!(
        json,
        "  \"dse\": {{ \"candidates\": {}, \"prune_rate\": {dse_prune_rate:.4}, \
         \"probes\": {}, \"cache_rebuilds\": {}, \"full_builds\": {}, \
         \"probe_vs_full_build_ratio\": {dse_probe_vs_full:.2}, \
         \"candidates_per_sec_serial\": {dse_cands_per_sec:.0}, \
         \"naive_candidates_per_sec_serial\": {naive_cands_per_sec:.0}, \
         \"streaming_vs_naive_speedup\": {dse_streaming_vs_naive:.2}, \
         \"explore_pool_submissions_on_host\": {explore_pool_submissions}, \
         \"sweep_100k_candidates\": {sweep_100k_cands}, \"sweep_100k_wall_ms\": {sweep_100k_ms:.1} }},",
        dse_perf.candidates, dse_perf.probes, dse_perf.cache_rebuilds, dse_perf.full_builds
    );
    let _ = writeln!(json, "  \"benchmarks\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"serial_ms\": {:.4}, \"parallel_ms\": {:.4}, \"warm_cache_ms\": {:.4}, \"allocs_serial\": {}, \"allocs_parallel\": {}, \"allocs_warm\": {} }}{comma}",
            r.name, r.serial_ms, r.parallel_ms, r.warm_cache_ms, r.allocs_serial, r.allocs_parallel, r.allocs_warm
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedups\": {{");
    let _ = writeln!(
        json,
        "    \"cold_build_speedup_vs_baseline\": {cold_build_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "    \"chip_build_parallel_vs_serial\": {chip_parallel_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "    \"explore_parallel_vs_serial\": {explore_parallel_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "    \"chip_build_warm_cache_vs_cold\": {chip_warm_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "    \"explore_batch_vs_explore_serial\": {batch_vs_explore_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "    \"bisection_incremental_vs_full\": {bisection_speedup:.3}"
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    if let Err(e) = std::fs::write(out_path, &json) {
        die(&format!("cannot write {out_path}: {e}"));
    }
    eprintln!("benchline: wrote {out_path}");

    if let Some(gate_path) = gate_path {
        let text = std::fs::read_to_string(gate_path)
            .unwrap_or_else(|e| die(&format!("cannot read gate baseline {gate_path}: {e}")));
        let baseline: serde_json::Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| die(&format!("gate baseline {gate_path} is not JSON: {e}")));
        let label = format!("{host_threads}cpu");
        let failures = gate_failures(
            &baseline,
            &rows,
            explore_parallel_speedup,
            trace_overhead_ratio,
            guard_overhead_ratio,
            dse_streaming_vs_naive,
            serve_warm_vs_cold,
            explore_pool_submissions,
            host_threads,
            &label,
            reps,
        );
        if failures.is_empty() {
            eprintln!("benchline: gate passed against {gate_path}");
        } else {
            for f in &failures {
                eprintln!("benchline: GATE FAILURE: {f}");
            }
            die(&format!(
                "{} regression(s) against {gate_path}",
                failures.len()
            ));
        }
    }
}
