//! The experiment functions, one per table/figure.

use crate::reference::published_chips;
use mcpat::metrics::{best_index, Metric, MetricSet};
use mcpat::{Processor, ProcessorConfig};
use mcpat_array::{ArraySpec, OptTarget};
use mcpat_circuit::repeater::RepeatedWire;
use mcpat_interconnect::router::{Router, RouterConfig};
use mcpat_mcore::config::CoreConfig;
use mcpat_mcore::core::CoreModel;
use mcpat_sim::{SystemModel, WorkloadProfile};
use mcpat_tech::{DeviceType, TechNode, TechParams, WireProjection, WireType};

// ---------------------------------------------------------------------------
// T-V1..T-V4: whole-chip validation tables
// ---------------------------------------------------------------------------

/// One row of a validation table.
#[derive(Debug, Clone)]
pub struct ValidationRow {
    /// Chip name.
    pub name: String,
    /// Published power, W.
    pub published_power_w: f64,
    /// Modeled peak power, W.
    pub modeled_power_w: f64,
    /// Published die area, mm².
    pub published_area_mm2: f64,
    /// Modeled die area, mm².
    pub modeled_area_mm2: f64,
    /// Per-component share comparison: (name, published, modeled).
    pub shares: Vec<(String, f64, f64)>,
}

impl ValidationRow {
    /// Relative power error.
    #[must_use]
    pub fn power_error(&self) -> f64 {
        (self.modeled_power_w - self.published_power_w) / self.published_power_w
    }

    /// Relative area error.
    #[must_use]
    pub fn area_error(&self) -> f64 {
        (self.modeled_area_mm2 - self.published_area_mm2) / self.published_area_mm2
    }
}

/// Runs T-V1..T-V4: models all four validation chips.
#[must_use]
pub fn validation_table() -> Vec<ValidationRow> {
    published_chips()
        .into_iter()
        .filter_map(|t| {
            let cfg = (t.config)();
            let chip = Processor::build(&cfg).ok()?;
            let p = chip.peak_power();
            let shares = t
                .power_shares
                .iter()
                .map(|&(name, published)| (name.to_owned(), published, p.share(name)))
                .collect();
            Some(ValidationRow {
                name: t.name.to_owned(),
                published_power_w: t.power_w,
                modeled_power_w: p.total(),
                published_area_mm2: t.area_mm2,
                modeled_area_mm2: chip.die_area_mm2(),
                shares,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// T-V5: runtime (typical) power vs peak
// ---------------------------------------------------------------------------

/// One row of the runtime-power validation.
#[derive(Debug, Clone)]
pub struct RuntimeRow {
    /// Chip name.
    pub name: String,
    /// Modeled peak power, W.
    pub peak_w: f64,
    /// Modeled runtime power on the chip's design-target workload, W.
    pub runtime_w: f64,
    /// Published typical/max ratio for reference (Niagara: 63/79 ≈ 0.80).
    pub published_ratio: f64,
}

/// Runs T-V5: runtime power of the throughput chips on their
/// design-target workload (transactional server load) vs modeled peak.
#[must_use]
pub fn runtime_validation() -> Vec<RuntimeRow> {
    let wl = WorkloadProfile::server_transactional();
    [
        (ProcessorConfig::niagara(), 63.0 / 79.0),
        (ProcessorConfig::niagara2(), 84.0 / 103.0),
    ]
    .into_iter()
    .filter_map(|(cfg, published_ratio)| {
        let chip = Processor::build(&cfg).ok()?;
        let run = SystemModel::new(&cfg).simulate(&wl, 500_000_000);
        let runtime = chip.runtime_power(&run.stats).total();
        Some(RuntimeRow {
            name: cfg.name.clone(),
            peak_w: chip.peak_power().total(),
            runtime_w: runtime,
            published_ratio,
        })
    })
    .collect()
}

// ---------------------------------------------------------------------------
// F-CS1..F-CS4: manycore brawny-vs-wimpy case study
// ---------------------------------------------------------------------------

/// One evaluated manycore design point.
#[derive(Debug, Clone)]
pub struct CaseStudyPoint {
    /// Point label, e.g. `inorder-32c-x4`.
    pub name: String,
    /// `"inorder"` or `"ooo"`.
    pub kind: &'static str,
    /// Core count.
    pub cores: u32,
    /// Cores per shared L2.
    pub cluster: u32,
    /// Peak (TDP-style) power, W.
    pub peak_power_w: f64,
    /// Runtime power on the case-study workload, W.
    pub runtime_power_w: f64,
    /// Die area, mm².
    pub area_mm2: f64,
    /// Execution time of the fixed instruction budget, s.
    pub seconds: f64,
    /// Aggregate throughput, instructions/s.
    pub throughput_ips: f64,
    /// Composite metrics point.
    pub metrics: MetricSet,
}

/// The case-study core used for one side of the comparison, normalized
/// to the same clock for both machine types.
fn case_study_core(kind: &'static str, node: TechNode) -> CoreConfig {
    let clock = match node {
        TechNode::N90 | TechNode::N180 => 2.0e9,
        TechNode::N65 => 2.4e9,
        TechNode::N45 => 2.8e9,
        TechNode::N32 | TechNode::N22 => 3.0e9,
    };
    let mut core = match kind {
        "inorder" => {
            // A lean CMT core: dual-issue, 4 threads, small L1s — the
            // Niagara philosophy without the SPARC register windows.
            let mut c = CoreConfig::generic_inorder();
            c.name = "cs-inorder".into();
            c.threads = 4;
            c
        }
        _ => {
            // A 4-wide out-of-order core with full-size L1s.
            let mut c = CoreConfig::generic_ooo();
            c.name = "cs-ooo".into();
            c
        }
    };
    core.clock_hz = clock;
    core
}

/// Runs F-CS1/F-CS2 in the abundant-TLP regime (enough software threads
/// to fill every hardware context). See
/// [`case_study_points_with_tlp`] for the latency-bound regime.
#[must_use]
pub fn case_study_points(node: TechNode) -> Vec<CaseStudyPoint> {
    case_study_points_with_tlp(node, f64::INFINITY)
}

/// Builds the design-point grid at `node` — 16- and 32-core in-order
/// chips vs a 16-core out-of-order chip, at clustering degrees
/// {1, 2, 4, 8} — under a workload offering `tlp` parallel software
/// threads, and evaluates power/area/performance on a fixed total
/// instruction budget.
#[must_use]
pub fn case_study_points_with_tlp(node: TechNode, tlp: f64) -> Vec<CaseStudyPoint> {
    let mut wl = WorkloadProfile::splash_like();
    if tlp.is_finite() {
        wl.tlp = tlp;
    }
    // Fixed total work so that delay/energy are comparable across points.
    let total_insts: u64 = 3_200_000_000;
    let total_l2: u64 = 16 * 1024 * 1024; // equal cache budget for all points
    let mut out = Vec::new();
    for (kind, cores) in [("inorder", 16u32), ("inorder", 32u32), ("ooo", 16u32)] {
        for cluster in [1u32, 2, 4, 8] {
            let core = case_study_core(kind, node);
            let cfg = ProcessorConfig::manycore(
                &format!("{kind}-{cores}c-x{cluster}"),
                node,
                core,
                cores,
                cluster,
                total_l2 * u64::from(cluster) / u64::from(cores),
            );
            let Ok(chip) = Processor::build(&cfg) else {
                continue;
            };
            let run = SystemModel::new(&cfg).simulate(&wl, total_insts / u64::from(cores));
            let power = chip.runtime_power(&run.stats);
            out.push(CaseStudyPoint {
                name: cfg.name.clone(),
                kind,
                cores,
                cluster,
                peak_power_w: chip.peak_power().total(),
                runtime_power_w: power.total(),
                area_mm2: chip.die_area_mm2(),
                seconds: run.seconds,
                throughput_ips: run.aggregate_ips,
                metrics: MetricSet::from_power(power.total(), run.seconds, chip.die_area()),
            });
        }
    }
    out
}

/// The winner of each composite metric over a set of case-study points
/// (F-CS3/F-CS4).
#[must_use]
pub fn case_study_metrics(points: &[CaseStudyPoint]) -> Vec<(Metric, String)> {
    let sets: Vec<MetricSet> = points.iter().map(|p| p.metrics).collect();
    Metric::ALL
        .iter()
        .filter_map(|&m| {
            best_index(&sets, m)
                .and_then(|i| points.get(i))
                .map(|p| (m, p.name.clone()))
        })
        .collect()
}

/// Runs the case study at several nodes and reports the EDA²P winner at
/// each — the paper's cross-node sweep showing whether the architectural
/// optimum is stable under scaling.
#[must_use]
pub fn case_study_across_nodes() -> Vec<(TechNode, String)> {
    [TechNode::N45, TechNode::N32, TechNode::N22]
        .into_iter()
        .map(|node| {
            let points = case_study_points_with_tlp(node, f64::INFINITY);
            let winners = case_study_metrics(&points);
            let eda2p = winners
                .into_iter()
                .find(|(m, _)| *m == Metric::Eda2p)
                .map(|(_, w)| w)
                .unwrap_or_default();
            (node, eda2p)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// F-TECH1: technology scaling
// ---------------------------------------------------------------------------

/// One row of the scaling figure.
#[derive(Debug, Clone, Copy)]
pub struct ScalingRow {
    /// Node.
    pub node: TechNode,
    /// Total peak power, W.
    pub total_w: f64,
    /// Dynamic component, W.
    pub dynamic_w: f64,
    /// Leakage component, W.
    pub leakage_w: f64,
    /// Die area, mm².
    pub area_mm2: f64,
}

/// Runs F-TECH1: a fixed Niagara2-like chip swept across nodes.
#[must_use]
pub fn tech_scaling() -> Vec<ScalingRow> {
    TechNode::SCALING_STUDY
        .iter()
        .filter_map(|&node| {
            let mut cfg = ProcessorConfig::niagara2();
            cfg.node = node;
            // Neutralize the FB-DIMM PHY standby so the figure shows the
            // silicon leakage trend, not a constant I/O floor.
            if let Some(mc) = cfg.mc.as_mut() {
                mc.phy_standby_override_w = None;
            }
            let chip = Processor::build(&cfg).ok()?;
            let p = chip.peak_power();
            Some(ScalingRow {
                node,
                total_w: p.total(),
                dynamic_w: p.dynamic(),
                leakage_w: p.leakage().total(),
                area_mm2: chip.die_area_mm2(),
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// F-TECH2: device flavors
// ---------------------------------------------------------------------------

/// One row of the device-flavor figure.
#[derive(Debug, Clone, Copy)]
pub struct FlavorRow {
    /// Device flavor.
    pub flavor: DeviceType,
    /// FO4 delay, s.
    pub fo4: f64,
    /// 1 MB array read energy, J.
    pub array_read_j: f64,
    /// 1 MB array leakage, W.
    pub array_leakage_w: f64,
    /// In-order core peak power, W.
    pub core_peak_w: f64,
    /// In-order core leakage, W.
    pub core_leakage_w: f64,
}

/// Runs F-TECH2: HP vs LSTP vs LOP at 32 nm on an array and a core.
#[must_use]
pub fn device_flavors() -> Vec<FlavorRow> {
    DeviceType::ALL
        .iter()
        .filter_map(|&flavor| {
            let tech = TechParams::new(TechNode::N32, flavor, 360.0);
            let array = ArraySpec::ram(1024 * 1024, 64)
                .named("flavor-array")
                .solve(&tech, OptTarget::EnergyDelay)
                .ok()?;
            let mut core_cfg = CoreConfig::generic_inorder();
            core_cfg.clock_hz = 1.0e9; // LSTP cannot clock fast; normalize
            let core = CoreModel::build(&tech, &core_cfg).ok()?;
            let peak = core.peak_power();
            Some(FlavorRow {
                flavor,
                fo4: tech.fo4(),
                array_read_j: array.read_energy,
                array_leakage_w: array.leakage.total(),
                core_peak_w: peak.total(),
                core_leakage_w: peak.leakage().total(),
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// F-WIRE1: interconnect projections
// ---------------------------------------------------------------------------

/// One row of the wire figure.
#[derive(Debug, Clone, Copy)]
pub struct WireRow {
    /// Node.
    pub node: TechNode,
    /// Projection.
    pub projection: WireProjection,
    /// Delay of an optimally repeated global wire, s/m.
    pub delay_s_per_m: f64,
    /// Energy per bit-transition, J/m.
    pub energy_j_per_m: f64,
}

/// Runs F-WIRE1: repeated global wire delay/energy across nodes and
/// projections.
#[must_use]
pub fn wire_projections() -> Vec<WireRow> {
    let mut rows = Vec::new();
    for &node in &TechNode::SCALING_STUDY {
        for projection in [WireProjection::Aggressive, WireProjection::Conservative] {
            let tech = TechParams::new(node, DeviceType::Hp, 360.0).with_projection(projection);
            let wire = RepeatedWire::delay_optimal(&tech, WireType::Global, 5e-3);
            rows.push(WireRow {
                node,
                projection,
                delay_s_per_m: wire.delay_per_m(),
                energy_j_per_m: wire.energy_per_m(),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// F-NOC1: router sweep
// ---------------------------------------------------------------------------

/// One row of the router figure.
#[derive(Debug, Clone, Copy)]
pub struct NocRow {
    /// Flit width, bits.
    pub flit_bits: u32,
    /// Virtual channels per port.
    pub vcs: u32,
    /// Energy of one flit through the router, J.
    pub router_energy_j: f64,
    /// Router area, m².
    pub router_area_m2: f64,
    /// Router leakage, W.
    pub router_leakage_w: f64,
}

/// Runs F-NOC1: router cost vs flit width and VC count at 32 nm.
#[must_use]
pub fn noc_sweep() -> Vec<NocRow> {
    let tech = TechParams::new(TechNode::N32, DeviceType::Hp, 360.0);
    let mut rows = Vec::new();
    for flit_bits in [32u32, 64, 128, 256] {
        for vcs in [2u32, 4, 8] {
            let router = Router::build(
                &tech,
                &RouterConfig {
                    ports: 5,
                    vcs_per_port: vcs,
                    buffers_per_vc: 4,
                    flit_bits,
                },
            )
            .ok();
            let Some(router) = router else { continue };
            rows.push(NocRow {
                flit_bits,
                vcs,
                router_energy_j: router.energy_per_flit(),
                router_area_m2: router.area(),
                router_leakage_w: router.leakage().total(),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// F-CLK1: clock network share
// ---------------------------------------------------------------------------

/// One row of the clock-share figure.
#[derive(Debug, Clone, Copy)]
pub struct ClockRow {
    /// Node.
    pub node: TechNode,
    /// Clock network share of total chip power.
    pub clock_share: f64,
}

/// Runs F-CLK1: clock-distribution share across nodes for a fixed chip.
#[must_use]
pub fn clock_fraction() -> Vec<ClockRow> {
    TechNode::SCALING_STUDY
        .iter()
        .filter_map(|&node| {
            let mut cfg = ProcessorConfig::niagara2();
            cfg.node = node;
            if let Some(mc) = cfg.mc.as_mut() {
                mc.phy_standby_override_w = None;
            }
            let chip = Processor::build(&cfg).ok()?;
            let p = chip.peak_power();
            Some(ClockRow {
                node,
                clock_share: p.share("clock"),
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// A-ABL1: array partition optimizer ablation
// ---------------------------------------------------------------------------

/// One row of the optimizer ablation.
#[derive(Debug, Clone)]
pub struct ArrayAblationRow {
    /// Partitioning label.
    pub label: String,
    /// Access time, s.
    pub access_time: f64,
    /// Read energy, J.
    pub read_energy: f64,
    /// Area, m².
    pub area: f64,
}

/// Runs A-ABL1: a 2 MB L2 data array — unpartitioned and naively
/// partitioned layouts vs the optimizer's choice.
#[must_use]
pub fn array_ablation() -> Vec<ArrayAblationRow> {
    let tech = TechParams::new(TechNode::N45, DeviceType::Hp, 360.0);
    let spec = ArraySpec::ram(2 * 1024 * 1024, 64).named("abl-l2");
    let mut rows = Vec::new();
    // lint: allow(L012, ablation over three fixed layouts; solve_fixed is one closed-form evaluation with no search, so it never needs a checkpoint)
    for (label, ndwl, ndbl, nspd) in [
        ("monolithic 1x1", 1usize, 1usize, 1usize),
        ("naive 4x4", 4, 4, 1),
        ("naive 16x16", 16, 16, 1),
    ] {
        if let Ok(a) = mcpat_array::solve::solve_fixed(&tech, &spec, ndwl, ndbl, nspd) {
            rows.push(ArrayAblationRow {
                label: label.to_owned(),
                access_time: a.access_time,
                read_energy: a.read_energy,
                area: a.area,
            });
        }
    }
    if let Ok(opt) = spec.solve(&tech, OptTarget::EnergyDelay) {
        rows.push(ArrayAblationRow {
            label: format!("optimizer ({}x{} nspd {})", opt.ndwl, opt.ndbl, opt.nspd),
            access_time: opt.access_time,
            read_energy: opt.read_energy,
            area: opt.area,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// A-ABL2: gating ablation
// ---------------------------------------------------------------------------

/// One row of the gating ablation.
#[derive(Debug, Clone)]
pub struct GatingRow {
    /// Configuration label.
    pub label: String,
    /// Runtime power at 30% duty, W.
    pub runtime_w: f64,
}

/// Runs A-ABL2: clock gating and long-channel leakage reduction on a
/// lightly loaded chip.
#[must_use]
pub fn gating_ablation() -> Vec<GatingRow> {
    let wl = WorkloadProfile::server_transactional();
    let mut rows = Vec::new();
    for (label, clock_gating, long_channel) in [
        ("no gating, short-channel", false, false),
        ("clock gating only", true, false),
        ("long-channel only", false, true),
        ("both", true, true),
    ] {
        let mut cfg = ProcessorConfig::niagara2();
        cfg.core.clock_gating = clock_gating;
        cfg.long_channel_leakage = long_channel;
        let Ok(chip) = Processor::build(&cfg) else {
            continue;
        };
        let mut run = SystemModel::new(&cfg).simulate(&wl, 10_000_000);
        // Force a light-duty interval: 70% idle.
        for core in &mut run.stats.cores {
            core.idle_cycles = core.cycles * 7 / 10;
        }
        let p = chip.runtime_power(&run.stats);
        rows.push(GatingRow {
            label: label.to_owned(),
            runtime_w: p.total(),
        });
    }
    rows
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn validation_errors_are_within_band() {
        for row in validation_table() {
            assert!(
                row.power_error().abs() < 0.30,
                "{}: {}",
                row.name,
                row.power_error()
            );
            assert!(
                row.area_error().abs() < 0.30,
                "{}: {}",
                row.name,
                row.area_error()
            );
        }
    }

    #[test]
    fn runtime_power_ratio_is_in_the_published_band() {
        for row in runtime_validation() {
            let ratio = row.runtime_w / row.peak_w;
            assert!(
                ratio > 0.3 && ratio < 1.0,
                "{}: runtime/peak = {ratio}",
                row.name
            );
        }
    }

    #[test]
    fn case_study_shapes_hold() {
        let points = case_study_points(TechNode::N22);
        assert_eq!(points.len(), 12);
        // In-order 32-core chips out-throughput OoO 16-core chips on TLP work.
        let io_best = points
            .iter()
            .filter(|p| p.kind == "inorder")
            .map(|p| p.throughput_ips)
            .fold(0.0, f64::max);
        let ooo_best = points
            .iter()
            .filter(|p| p.kind == "ooo")
            .map(|p| p.throughput_ips)
            .fold(0.0, f64::max);
        assert!(
            io_best > ooo_best * 0.9,
            "io {io_best:e} vs ooo {ooo_best:e}"
        );
        let winners = case_study_metrics(&points);
        assert_eq!(winners.len(), Metric::ALL.len());
    }

    #[test]
    fn cross_node_winners_exist_for_every_node() {
        let rows = case_study_across_nodes();
        assert_eq!(rows.len(), 3);
        for (node, winner) in rows {
            assert!(!winner.is_empty(), "{node} has no winner");
        }
    }

    #[test]
    fn scaling_rows_shrink_and_leak() {
        let rows = tech_scaling();
        for pair in rows.windows(2) {
            assert!(pair[1].area_mm2 < pair[0].area_mm2);
            let f0 = pair[0].leakage_w / pair[0].total_w;
            let f1 = pair[1].leakage_w / pair[1].total_w;
            assert!(f1 > f0, "leakage fraction must grow");
        }
    }

    #[test]
    fn lstp_leaks_orders_less_than_hp() {
        let rows = device_flavors();
        let hp = rows.iter().find(|r| r.flavor == DeviceType::Hp).unwrap();
        let lstp = rows.iter().find(|r| r.flavor == DeviceType::Lstp).unwrap();
        assert!(lstp.array_leakage_w < hp.array_leakage_w / 100.0);
        assert!(lstp.fo4 > hp.fo4);
    }

    #[test]
    fn conservative_wires_are_consistently_worse() {
        let rows = wire_projections();
        for chunk in rows.chunks(2) {
            assert!(chunk[1].delay_s_per_m > chunk[0].delay_s_per_m);
            assert!(chunk[1].energy_j_per_m > chunk[0].energy_j_per_m);
        }
    }

    #[test]
    fn router_energy_grows_with_flit_width() {
        let rows = noc_sweep();
        let narrow = rows
            .iter()
            .find(|r| r.flit_bits == 32 && r.vcs == 4)
            .unwrap();
        let wide = rows
            .iter()
            .find(|r| r.flit_bits == 256 && r.vcs == 4)
            .unwrap();
        assert!(wide.router_energy_j > 3.0 * narrow.router_energy_j);
    }

    #[test]
    fn optimizer_beats_naive_partitionings() {
        let rows = array_ablation();
        let opt = rows.last().unwrap();
        let mono = &rows[0];
        // The optimizer must beat the monolithic layout on energy·delay.
        assert!(
            opt.read_energy * opt.access_time < mono.read_energy * mono.access_time,
            "optimizer ED {} vs monolithic {}",
            opt.read_energy * opt.access_time,
            mono.read_energy * mono.access_time
        );
    }

    #[test]
    fn gating_saves_power_monotonically() {
        let rows = gating_ablation();
        let none = rows[0].runtime_w;
        let both = rows[3].runtime_w;
        assert!(both < none, "both {both} vs none {none}");
    }

    #[test]
    fn clock_share_is_double_digit_at_older_nodes() {
        let rows = clock_fraction();
        assert!(
            rows[0].clock_share > 0.10,
            "90nm share {}",
            rows[0].clock_share
        );
    }
}
