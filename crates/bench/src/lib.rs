//! # mcpat-bench — the reproduction harness
//!
//! One function per table/figure of the evaluation (see DESIGN.md §4 and
//! EXPERIMENTS.md for the index). Each returns structured rows so that
//!
//! * the `repro` binary can print paper-vs-measured tables, and
//! * the Criterion benches can time the model evaluation itself.
//!
//! Experiment ids:
//!
//! | id | function |
//! | --- | --- |
//! | T-V1..T-V4 | [`experiments::validation_table`] |
//! | F-CS1/F-CS2 | [`experiments::case_study_points_with_tlp`] |
//! | F-CS3/F-CS4 | [`experiments::case_study_metrics`] |
//! | F-TECH1 | [`experiments::tech_scaling`] |
//! | F-TECH2 | [`experiments::device_flavors`] |
//! | F-WIRE1 | [`experiments::wire_projections`] |
//! | F-NOC1 | [`experiments::noc_sweep`] |
//! | F-CLK1 | [`experiments::clock_fraction`] |
//! | A-ABL1 | [`experiments::array_ablation`] |
//! | A-ABL2 | [`experiments::gating_ablation`] |
//! | T-V5 | [`experiments::runtime_validation`] |
//! | F-CS5 | [`experiments::case_study_across_nodes`] |

pub mod experiments;
pub mod reference;

pub use experiments::*;
pub use reference::published_chips;
