#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Criterion benches — one group per table/figure. Each bench runs the
//! corresponding experiment end to end, so `cargo bench` both times the
//! framework and re-executes every reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use mcpat_bench as exp;
use mcpat_tech::TechNode;
use std::hint::black_box;

fn bench_validation(c: &mut Criterion) {
    c.bench_function("T-V1..4 validation table", |b| {
        b.iter(|| black_box(exp::validation_table()))
    });
    c.bench_function("T-V5 runtime validation", |b| {
        b.iter(|| black_box(exp::runtime_validation()))
    });
}

fn bench_case_study(c: &mut Criterion) {
    let mut g = c.benchmark_group("case-study");
    g.sample_size(10);
    g.bench_function("F-CS1/2 design points (22nm)", |b| {
        b.iter(|| black_box(exp::case_study_points(TechNode::N22)))
    });
    let points = exp::case_study_points(TechNode::N22);
    g.bench_function("F-CS3/4 metric winners", |b| {
        b.iter(|| black_box(exp::case_study_metrics(black_box(&points))))
    });
    g.finish();
}

fn bench_tech(c: &mut Criterion) {
    let mut g = c.benchmark_group("tech");
    g.sample_size(10);
    g.bench_function("F-TECH1 scaling sweep", |b| {
        b.iter(|| black_box(exp::tech_scaling()))
    });
    g.bench_function("F-TECH2 device flavors", |b| {
        b.iter(|| black_box(exp::device_flavors()))
    });
    g.finish();
}

fn bench_wires_noc_clock(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric");
    g.sample_size(10);
    g.bench_function("F-WIRE1 wire projections", |b| {
        b.iter(|| black_box(exp::wire_projections()))
    });
    g.bench_function("F-NOC1 router sweep", |b| {
        b.iter(|| black_box(exp::noc_sweep()))
    });
    g.bench_function("F-CLK1 clock share", |b| {
        b.iter(|| black_box(exp::clock_fraction()))
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("A-ABL1 array optimizer", |b| {
        b.iter(|| black_box(exp::array_ablation()))
    });
    g.bench_function("A-ABL2 gating", |b| {
        b.iter(|| black_box(exp::gating_ablation()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_validation,
    bench_case_study,
    bench_tech,
    bench_wires_noc_clock,
    bench_ablations
);
criterion_main!(benches);
