#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Criterion benches of the framework itself — McPAT's pitch is *fast*
//! analytical modeling, so the tool's own evaluation speed is a tracked
//! quantity: single-array solves, core builds, and whole-chip builds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcpat::{Processor, ProcessorConfig};
use mcpat_array::{ArraySpec, OptTarget};
use mcpat_mcore::config::CoreConfig;
use mcpat_mcore::core::CoreModel;
use mcpat_sim::{run_trace, SystemModel, WorkloadProfile};
use mcpat_tech::{DeviceType, TechNode, TechParams};
use std::hint::black_box;

fn bench_array_solver(c: &mut Criterion) {
    let tech = TechParams::new(TechNode::N32, DeviceType::Hp, 360.0);
    let mut g = c.benchmark_group("array-solver");
    for kb in [32u64, 256, 2048, 16384] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kb}KB")),
            &kb,
            |b, &kb| {
                let spec = ArraySpec::ram(kb * 1024, 64);
                b.iter(|| black_box(spec.solve(&tech, OptTarget::EnergyDelay).unwrap()));
            },
        );
    }
    g.finish();
}

fn bench_core_build(c: &mut Criterion) {
    let tech = TechParams::new(TechNode::N45, DeviceType::Hp, 360.0);
    let mut g = c.benchmark_group("core-build");
    g.bench_function("in-order", |b| {
        let cfg = CoreConfig::generic_inorder();
        b.iter(|| black_box(CoreModel::build(&tech, &cfg).unwrap()));
    });
    g.bench_function("out-of-order", |b| {
        let cfg = CoreConfig::generic_ooo();
        b.iter(|| black_box(CoreModel::build(&tech, &cfg).unwrap()));
    });
    g.finish();
}

fn bench_chip_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("chip-build");
    g.sample_size(10);
    for (name, cfg) in [
        ("niagara", ProcessorConfig::niagara()),
        ("tulsa", ProcessorConfig::tulsa()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(Processor::build(&cfg).unwrap()))
        });
    }
    g.finish();
}

fn bench_performance_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("perf-model");
    let cfg = ProcessorConfig::niagara2();
    let wl = WorkloadProfile::splash_like();
    g.bench_function("analytic 100M-inst system sim", |b| {
        let sys = SystemModel::new(&cfg);
        b.iter(|| black_box(sys.simulate(&wl, 100_000_000)));
    });
    g.bench_function("trace 100K-op core sim", |b| {
        let core = CoreConfig::generic_ooo();
        b.iter(|| black_box(run_trace(&core, &wl, 100_000, 1)));
    });
    g.finish();
}

criterion_group!(
    toolspeed,
    bench_array_solver,
    bench_core_build,
    bench_chip_build,
    bench_performance_models
);
criterion_main!(toolspeed);
