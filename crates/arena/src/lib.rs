//! A tiny bump arena for build-scoped scratch memory.
//!
//! The modeling stack's hot paths (the array partition sweep, core and
//! chip assembly) need short-lived buffers whose sizes are known or
//! tightly bounded at the start of a build. Allocating them from the
//! global heap costs a malloc/free pair per buffer per build; this crate
//! replaces that with a per-thread bump arena that is *reused across
//! builds*: the first build grows the arena to the high-water mark, and
//! every subsequent build on that thread allocates out of the retained
//! chunks without touching the system allocator at all.
//!
//! # Model
//!
//! - [`scratch`] (or [`Arena::scope`]) opens a *scope*: the closure
//!   receives a [`Scratch`] handle and may allocate through it; when the
//!   closure returns — or unwinds — the arena cursor rolls back to where
//!   it was, instantly reclaiming every allocation made inside.
//! - Allocations are limited to `T: Copy`, so rollback never needs to
//!   run destructors and a scope can be abandoned at any point.
//! - Escape is prevented by rank-2 typing: the closure must accept
//!   `Scratch<'s>` for *every* lifetime `'s`, so its return type cannot
//!   mention `'s` and references into the arena cannot leave the scope.
//! - Scopes nest: an inner scope rolls back to its own mark, leaving the
//!   outer scope's allocations intact.
//!
//! The arena is deliberately knob-free: there is no environment
//! variable, no global registry, and no cross-thread sharing. A thread
//! that never calls [`scratch`] pays nothing.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::ptr::NonNull;

/// Smallest chunk the arena requests from the system allocator. Sized
/// so a typical array-solver sweep (a few KB of cells and geometry
/// tables) fits in the first chunk.
const MIN_CHUNK_BYTES: usize = 16 * 1024;

/// Alignment of every chunk, an upper bound on the alignment of the
/// `Copy` scalar bundles the modeling code allocates. Requests with
/// larger alignment are still honored — the bump pointer pads — because
/// [`Arena::grow_for`] reserves `align` slack bytes.
const CHUNK_ALIGN: usize = 16;

/// One system allocation owned by the arena.
struct Chunk {
    ptr: NonNull<u8>,
    size: usize,
}

/// A per-thread bump allocator with scope-based rollback. See the
/// crate-level docs; most callers want the thread-local [`scratch`]
/// entry point rather than owning an `Arena` directly.
pub struct Arena {
    chunks: RefCell<Vec<Chunk>>,
    /// Index of the chunk the cursor is bumping through.
    current: Cell<usize>,
    /// Byte offset of the next allocation within the current chunk.
    cursor: Cell<usize>,
}

impl Arena {
    /// An empty arena: no memory is requested until the first
    /// allocation.
    #[must_use]
    pub fn new() -> Arena {
        Arena {
            chunks: RefCell::new(Vec::new()),
            current: Cell::new(0),
            cursor: Cell::new(0),
        }
    }

    /// Total bytes currently held from the system allocator (the
    /// high-water footprint; scopes rolling back do not shrink it —
    /// that retention is the point).
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.chunks.borrow().iter().map(|c| c.size).sum()
    }

    /// Opens an allocation scope. The closure may allocate through the
    /// [`Scratch`] handle; everything it allocated is reclaimed when the
    /// closure returns or unwinds. Returns the closure's result.
    pub fn scope<R>(&self, f: impl for<'s> FnOnce(Scratch<'s>) -> R) -> R {
        let _guard = ResetGuard {
            arena: self,
            chunk: self.current.get(),
            cursor: self.cursor.get(),
        };
        f(Scratch {
            arena: self,
            _scope: PhantomData,
        })
    }

    /// Bumps the cursor within the current chunk, or fails if it does
    /// not fit. Never touches the system allocator.
    fn try_bump(&self, size: usize, align: usize) -> Option<NonNull<u8>> {
        let chunks = self.chunks.borrow();
        let chunk = chunks.get(self.current.get())?;
        let cur = self.cursor.get();
        let base_addr = chunk.ptr.as_ptr() as usize;
        // Pad to alignment relative to the chunk's actual address.
        let rem = base_addr.wrapping_add(cur) % align;
        let pad = if rem == 0 { 0 } else { align - rem };
        let off = cur.checked_add(pad)?;
        let end = off.checked_add(size)?;
        if end > chunk.size {
            return None;
        }
        self.cursor.set(end);
        // SAFETY: `off + size <= chunk.size`, so the offset pointer is
        // in bounds of the chunk's allocation.
        NonNull::new(unsafe { chunk.ptr.as_ptr().add(off) })
    }

    /// Makes the current chunk able to hold `size`+`align` bytes, first
    /// by advancing into retained spare chunks (from a previous, larger
    /// scope on this thread), then by allocating a fresh chunk with
    /// doubling growth. Diverges via [`handle_alloc_error`] if the
    /// system allocator fails, exactly as `Vec` would.
    fn grow_for(&self, size: usize, align: usize) {
        let min_size = size.saturating_add(align);
        let mut chunks = self.chunks.borrow_mut();
        let mut idx = if chunks.is_empty() {
            0
        } else {
            self.current.get().saturating_add(1)
        };
        while let Some(spare) = chunks.get(idx) {
            if spare.size >= min_size {
                self.current.set(idx);
                self.cursor.set(0);
                return;
            }
            idx += 1;
        }
        let last_size = chunks.last().map_or(0, |c| c.size);
        let new_size = min_size
            .max(last_size.saturating_mul(2))
            .max(MIN_CHUNK_BYTES);
        let Ok(layout) = Layout::from_size_align(new_size, CHUNK_ALIGN) else {
            handle_alloc_error(Layout::new::<u8>())
        };
        // SAFETY: `layout` has nonzero size (`new_size >= MIN_CHUNK_BYTES`).
        let Some(ptr) = NonNull::new(unsafe { alloc(layout) }) else {
            handle_alloc_error(layout)
        };
        chunks.push(Chunk {
            ptr,
            size: new_size,
        });
        self.current.set(chunks.len() - 1);
        self.cursor.set(0);
    }

    /// Bump-allocates `size` bytes at `align`. The `RefCell` borrow is
    /// confined to [`Arena::try_bump`]/[`Arena::grow_for`]; it is never
    /// held while caller code runs.
    fn alloc_raw(&self, size: usize, align: usize) -> NonNull<u8> {
        if let Some(p) = self.try_bump(size, align) {
            return p;
        }
        self.grow_for(size, align);
        match self.try_bump(size, align) {
            Some(p) => p,
            // Unreachable: grow_for either produced a chunk with
            // size+align free bytes or diverged.
            None => handle_alloc_error(Layout::new::<u8>()),
        }
    }
}

impl Default for Arena {
    fn default() -> Arena {
        Arena::new()
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        for chunk in self.chunks.get_mut().drain(..) {
            let Ok(layout) = Layout::from_size_align(chunk.size, CHUNK_ALIGN) else {
                continue;
            };
            // SAFETY: every chunk was allocated in `grow_for` with this
            // exact layout and is deallocated exactly once, here.
            unsafe { dealloc(chunk.ptr.as_ptr(), layout) };
        }
    }
}

/// Rolls the arena cursor back to the scope's entry mark, including on
/// unwind, so a panicking build never leaks arena space.
struct ResetGuard<'a> {
    arena: &'a Arena,
    chunk: usize,
    cursor: usize,
}

impl Drop for ResetGuard<'_> {
    fn drop(&mut self) {
        self.arena.current.set(self.chunk);
        self.arena.cursor.set(self.cursor);
    }
}

/// The allocation handle passed to a scope closure. `'s` is the scope's
/// brand lifetime: allocations borrow it, so they cannot outlive the
/// scope (the rank-2 signature of [`Arena::scope`] keeps `'s` out of
/// the closure's return type).
#[derive(Clone, Copy)]
pub struct Scratch<'s> {
    arena: &'s Arena,
    _scope: PhantomData<fn(&'s ()) -> &'s ()>,
}

impl<'s> Scratch<'s> {
    /// Allocates a slice of `len` copies of `fill` from the arena.
    /// Zero-length requests allocate nothing. Like `Vec`, diverges via
    /// the global allocation-error hook if the system is out of memory;
    /// it never panics otherwise.
    #[must_use]
    pub fn alloc_fill<T: Copy>(&self, len: usize, fill: T) -> &'s mut [T] {
        if len == 0 || size_of::<T>() == 0 {
            return &mut [];
        }
        let Some(bytes) = size_of::<T>().checked_mul(len) else {
            handle_alloc_error(Layout::new::<T>())
        };
        let ptr = self
            .arena
            .alloc_raw(bytes, align_of::<T>())
            .as_ptr()
            .cast::<T>();
        // SAFETY: `ptr` is aligned for `T` and points at `bytes` fresh,
        // exclusively owned bytes: `alloc_raw` never returns overlapping
        // regions within a scope, and the scope guard only reclaims the
        // region after `'s` ends. Writing `len` elements initializes
        // exactly the allocation, and `T: Copy` means no drops are owed.
        unsafe {
            for i in 0..len {
                ptr.add(i).write(fill);
            }
            std::slice::from_raw_parts_mut(ptr, len)
        }
    }

    /// Bytes currently held by the underlying arena.
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.arena.footprint_bytes()
    }
}

thread_local! {
    static TLS_ARENA: Arena = Arena::new();
}

/// Opens a scope on the calling thread's arena — the standard entry
/// point. The arena persists for the life of the thread, so repeated
/// builds reuse the same chunks and steady-state builds make zero
/// system allocations for their scratch memory.
pub fn scratch<R>(f: impl for<'s> FnOnce(Scratch<'s>) -> R) -> R {
    TLS_ARENA.with(|a| a.scope(f))
}

/// The calling thread's arena footprint in bytes (0 before its first
/// scope). Exposed for tests and allocation-accounting probes.
#[must_use]
pub fn thread_footprint_bytes() -> usize {
    TLS_ARENA.with(Arena::footprint_bytes)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn fills_and_returns_writable_slices() {
        let arena = Arena::new();
        arena.scope(|s| {
            let xs = s.alloc_fill(5, 7u64);
            assert_eq!(xs, &[7, 7, 7, 7, 7]);
            xs[2] = 9;
            let ys = s.alloc_fill(3, -1i32);
            assert_eq!(xs[2], 9, "second allocation must not alias the first");
            assert_eq!(ys, &[-1, -1, -1]);
        });
    }

    #[test]
    fn zero_len_allocates_nothing() {
        let arena = Arena::new();
        arena.scope(|s| {
            let xs: &mut [f64] = s.alloc_fill(0, 0.0);
            assert!(xs.is_empty());
        });
        assert_eq!(arena.footprint_bytes(), 0);
    }

    #[test]
    fn scopes_reuse_memory_instead_of_growing() {
        let arena = Arena::new();
        for _ in 0..100 {
            arena.scope(|s| {
                let xs = s.alloc_fill(1000, 1u64);
                assert_eq!(xs.iter().sum::<u64>(), 1000);
            });
        }
        // 8 KB per scope, 100 scopes: with rollback-and-reuse this fits
        // in the single initial chunk.
        assert_eq!(arena.footprint_bytes(), MIN_CHUNK_BYTES);
    }

    #[test]
    fn nested_scopes_preserve_outer_allocations() {
        let arena = Arena::new();
        arena.scope(|outer| {
            let a = outer.alloc_fill(16, 0xAAu8);
            arena.scope(|inner| {
                let b = inner.alloc_fill(16, 0xBBu8);
                assert!(b.iter().all(|&x| x == 0xBB));
            });
            // A post-inner-scope allocation may recycle the inner
            // scope's bytes but must not touch the outer allocation.
            let c = outer.alloc_fill(16, 0xCCu8);
            assert!(a.iter().all(|&x| x == 0xAA));
            assert!(c.iter().all(|&x| x == 0xCC));
        });
    }

    #[test]
    fn large_allocations_get_their_own_chunk() {
        let arena = Arena::new();
        arena.scope(|s| {
            let big = s.alloc_fill(MIN_CHUNK_BYTES, 3u8);
            assert_eq!(big.len(), MIN_CHUNK_BYTES);
            assert!(big.iter().all(|&x| x == 3));
        });
        assert!(arena.footprint_bytes() >= MIN_CHUNK_BYTES);
    }

    #[test]
    fn mixed_alignment_allocations_are_aligned() {
        let arena = Arena::new();
        arena.scope(|s| {
            let _odd = s.alloc_fill(3, 1u8);
            let wide = s.alloc_fill(4, 1.5f64);
            assert_eq!((wide.as_ptr() as usize) % align_of::<f64>(), 0);
            let _odd2 = s.alloc_fill(1, 1u8);
            let wider = s.alloc_fill(2, 2u128);
            assert_eq!((wider.as_ptr() as usize) % align_of::<u128>(), 0);
        });
    }

    #[test]
    fn unwinding_scope_rolls_back_the_cursor() {
        let arena = Arena::new();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            arena.scope(|s| {
                let _xs = s.alloc_fill(100, 1u32);
                panic!("mid-scope failure");
            });
        }));
        assert!(boom.is_err());
        // The cursor rolled back: the next scope re-fills from the mark
        // and the footprint stays at one chunk.
        arena.scope(|s| {
            let xs = s.alloc_fill(100, 2u32);
            assert!(xs.iter().all(|&x| x == 2));
        });
        assert_eq!(arena.footprint_bytes(), MIN_CHUNK_BYTES);
    }

    #[test]
    fn thread_local_scratch_retains_footprint_across_scopes() {
        let (first, second) = std::thread::spawn(|| {
            let first = scratch(|s| {
                let _xs = s.alloc_fill(512, 0u64);
                s.footprint_bytes()
            });
            let second = scratch(|s| {
                let _xs = s.alloc_fill(512, 0u64);
                s.footprint_bytes()
            });
            (first, second)
        })
        .join()
        .unwrap();
        assert_eq!(first, MIN_CHUNK_BYTES);
        assert_eq!(second, first, "steady state must not grow");
    }

    #[test]
    fn spare_chunks_are_reused_in_order() {
        let arena = Arena::new();
        // Grow to two chunks…
        arena.scope(|s| {
            let _a = s.alloc_fill(MIN_CHUNK_BYTES - 64, 0u8);
            let _b = s.alloc_fill(MIN_CHUNK_BYTES, 0u8);
        });
        let grown = arena.footprint_bytes();
        // …then run the same scope again: no further growth.
        arena.scope(|s| {
            let _a = s.alloc_fill(MIN_CHUNK_BYTES - 64, 0u8);
            let _b = s.alloc_fill(MIN_CHUNK_BYTES, 0u8);
        });
        assert_eq!(arena.footprint_bytes(), grown);
    }
}
