//! The TCP server: admission, per-request governance and billing,
//! build coalescing, and drain.
//!
//! One thread per connection; requests on a connection are answered in
//! order (clients wanting concurrency open multiple connections, the
//! natural shape for a line-delimited protocol). The accept loop and
//! every connection's read loop poll with short timeouts so a drain
//! request — from SIGTERM via [`crate::request_drain`] or from a
//! `shutdown` envelope — is observed within tens of milliseconds:
//! in-flight requests finish and are answered, idle connections close,
//! and [`Server::run`] returns.
//!
//! **Coalescing.** Two concurrent `evaluate` requests whose configs
//! differ only in `name` are the same model; the second parks on the
//! first's in-flight build (the `explore_batch` dedupe contract) and
//! re-labels a clone of the shared chip. The coalesce map holds the
//! canonical config JSON (name cleared) — never a lock across the
//! build itself, mirroring the solve cache's pending-key protocol.

use crate::proto::{self, EvaluateRequest, Request, RequestPerf, ServerStatsView};
use mcpat::guard::Budget;
use mcpat::obs::Collector;
use mcpat::{AtPath, McpatError, Processor, ProcessorConfig};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Read timeout per connection: the cadence at which an idle
/// connection notices a drain request.
const READ_POLL: Duration = Duration::from_millis(50);

/// Accept-loop poll cadence while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Heartbeat for requests parked on a coalesced in-flight build —
/// bounds both a missed wake-up and the latency of a waiter's own
/// budget check.
const WAIT_POLL: Duration = Duration::from_millis(10);

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Maximum concurrently admitted `evaluate` requests; further ones
    /// are answered with a typed `Overloaded` error immediately
    /// (0 = unbounded). Defaults to the `MCPAT_SERVE_MAX_INFLIGHT`
    /// knob.
    pub max_inflight: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            max_inflight: mcpat::knobs::serve_max_inflight(),
        }
    }
}

/// Monotonic server counters, exposed by the `stats` request.
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    coalesced_requests: AtomicU64,
}

/// One in-flight coalesced build: the outcome slot and the condvar
/// waiters park on.
struct BuildSlot {
    done: Mutex<Option<Result<Arc<Processor>, McpatError>>>,
    cv: Condvar,
}

impl BuildSlot {
    fn new() -> BuildSlot {
        BuildSlot {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }
}

/// State shared between the accept loop, connection threads, and
/// [`ServerHandle`]s.
struct Shared {
    max_inflight: usize,
    in_flight: AtomicUsize,
    drain: AtomicBool,
    counters: Counters,
    /// Canonical config JSON (name cleared) -> in-flight build.
    builds: Mutex<HashMap<String, Arc<BuildSlot>>>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst) || crate::drain_requested()
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// RAII admission token: holds one in-flight slot, released on drop.
struct Admit<'a> {
    shared: &'a Shared,
}

impl<'a> Admit<'a> {
    fn try_new(shared: &'a Shared) -> Option<Admit<'a>> {
        let cap = shared.max_inflight;
        shared
            .in_flight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                if cap == 0 || n < cap {
                    Some(n + 1)
                } else {
                    None
                }
            })
            .ok()
            .map(|_| Admit { shared })
    }
}

impl Drop for Admit<'_> {
    fn drop(&mut self) {
        self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

/// A cheap handle onto a running (or about-to-run) server, for tests
/// and embedders: the bound address, a drain trigger, and the
/// admission gauge.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The address the server is listening on (with the ephemeral port
    /// resolved, so `--listen 127.0.0.1:0` is usable in tests).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks this server to drain: in-flight requests finish, no new
    /// connections are accepted, and [`Server::run`] returns.
    pub fn request_drain(&self) {
        self.shared.drain.store(true, Ordering::SeqCst);
    }

    /// Currently admitted `evaluate` requests.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::SeqCst)
    }
}

impl Server {
    /// Binds the listener.
    ///
    /// # Errors
    ///
    /// The underlying `TcpListener::bind` / `local_addr` failure.
    pub fn bind(listen: &str, opts: &ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            shared: Arc::new(Shared {
                max_inflight: opts.max_inflight,
                in_flight: AtomicUsize::new(0),
                drain: AtomicBool::new(false),
                counters: Counters::default(),
                builds: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// The resolved listen address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle usable from other threads while `run` owns the server.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until a drain is requested (SIGTERM via
    /// [`crate::request_drain`], a `shutdown` envelope, or
    /// [`ServerHandle::request_drain`]), then joins every connection
    /// thread — in-flight requests finish and are answered — and
    /// returns.
    ///
    /// # Errors
    ///
    /// A fatal accept-loop I/O failure (transient `WouldBlock` /
    /// `Interrupted` conditions are retried).
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shared.draining() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Responses are single small lines; without nodelay
                    // Nagle + delayed ACK adds ~40 ms per round trip.
                    let _ = stream.set_nodelay(true);
                    let shared = Arc::clone(&self.shared);
                    conns.push(std::thread::spawn(move || {
                        handle_connection(&shared, stream);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            conns.retain(|c| !c.is_finished());
        }
        // Drain: stop accepting, let every connection finish its
        // current request and observe the flag.
        drop(self.listener);
        for c in conns {
            let _ = c.join();
        }
        Ok(())
    }
}

/// One connection: accumulate bytes, answer each complete line in
/// order, close on EOF, error, or drain.
fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut acc: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        while let Some(pos) = acc.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = acc.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            let response = handle_request(shared, text);
            if write_line(&mut stream, &response).is_err() {
                return;
            }
        }
        // Between requests only: an admitted request always finishes.
        if shared.draining() && acc.is_empty() {
            return;
        }
        if acc.len() > proto::MAX_REQUEST_BYTES {
            let response = proto::error_response(
                None,
                "InvalidRequest",
                "request line exceeds the size limit",
                None,
            );
            let _ = write_line(&mut stream, &response);
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                if let Some(bytes) = chunk.get(..n) {
                    acc.extend_from_slice(bytes);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return,
        }
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Dispatches one parsed request line to its handler.
fn handle_request(shared: &Arc<Shared>, line: &str) -> String {
    shared.counters.requests.fetch_add(1, Ordering::SeqCst);
    match proto::parse(line) {
        Err(pe) => {
            shared.counters.errors.fetch_add(1, Ordering::SeqCst);
            proto::error_response(pe.id, pe.kind, &pe.message, None)
        }
        Ok(Request::Ping { id }) => {
            shared.counters.ok.fetch_add(1, Ordering::SeqCst);
            proto::pong_response(id)
        }
        Ok(Request::Stats { id }) => {
            shared.counters.ok.fetch_add(1, Ordering::SeqCst);
            stats_response(shared, id)
        }
        Ok(Request::Shutdown { id }) => {
            shared.counters.ok.fetch_add(1, Ordering::SeqCst);
            shared.drain.store(true, Ordering::SeqCst);
            proto::shutdown_response(id)
        }
        Ok(Request::Evaluate(req)) => handle_evaluate(shared, &req),
    }
}

/// The `stats` request bypasses admission (it must stay answerable at
/// the cap, so clients can observe an overloaded server).
fn stats_response(shared: &Shared, id: Option<u64>) -> String {
    let c = &shared.counters;
    let view = ServerStatsView {
        requests: c.requests.load(Ordering::SeqCst),
        ok: c.ok.load(Ordering::SeqCst),
        errors: c.errors.load(Ordering::SeqCst),
        overloaded: c.overloaded.load(Ordering::SeqCst),
        deadline_exceeded: c.deadline_exceeded.load(Ordering::SeqCst),
        coalesced_requests: c.coalesced_requests.load(Ordering::SeqCst),
        in_flight: shared.in_flight.load(Ordering::SeqCst) as u64,
        max_inflight: shared.max_inflight as u64,
        draining: shared.draining(),
    };
    proto::stats_response(
        id,
        &mcpat::array::memo::stats(),
        &mcpat::par::pool::stats(),
        &view,
    )
}

/// Maps a build failure to its wire `error.kind`.
fn error_kind(e: &McpatError) -> &'static str {
    if let Some(g) = e.guard_error() {
        return g.kind();
    }
    match e {
        McpatError::Invalid(_) => "InvalidConfig",
        McpatError::Array(_) | McpatError::Budget(_) => "Infeasible",
    }
}

/// One admitted `evaluate`: its own budget scope, its own collector,
/// coalesced onto an identical in-flight build when one exists.
fn handle_evaluate(shared: &Arc<Shared>, req: &EvaluateRequest) -> String {
    let Some(_admit) = Admit::try_new(shared) else {
        shared.counters.overloaded.fetch_add(1, Ordering::SeqCst);
        shared.counters.errors.fetch_add(1, Ordering::SeqCst);
        return proto::error_response(
            req.id,
            "Overloaded",
            &format!(
                "server is at its admission cap ({} evaluation(s) in flight)",
                shared.max_inflight
            ),
            None,
        );
    };
    let start = Instant::now();
    let collector = Collector::new();
    let budget = req
        .deadline_ms
        .map(|ms| Budget::with_deadline(Duration::from_millis(ms)));
    let mut built = false;
    let mut coalesced = false;
    let outcome = {
        let _obs_scope = collector.enter();
        let _budget_scope = budget.as_ref().map(Budget::enter);
        evaluate(shared, &req.config, &mut built, &mut coalesced)
    };
    // The scope guard has dropped: the thread's allocation delta is
    // flushed and the snapshot below is this request's final bill.
    let snap = collector.snapshot();
    let perf = RequestPerf {
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        built,
        coalesced,
        solve_cache_hits: snap.solve_cache_hits,
        solve_cache_misses: snap.solve_cache_misses,
        solve_cache_coalesced: snap.solve_cache_coalesced,
        solve_cache_evictions: snap.solve_cache_evictions,
        pool_submitted: snap.pool_submitted,
        pool_steals: snap.pool_steals,
        pool_inline: snap.pool_inline,
        allocs: snap.allocs,
    };
    match outcome {
        Ok(report) => {
            shared.counters.ok.fetch_add(1, Ordering::SeqCst);
            proto::evaluate_response(req.id, &report, &perf)
        }
        Err(e) => {
            shared.counters.errors.fetch_add(1, Ordering::SeqCst);
            let kind = error_kind(&e);
            if kind == "DeadlineExceeded" {
                shared
                    .counters
                    .deadline_exceeded
                    .fetch_add(1, Ordering::SeqCst);
            }
            proto::error_response(req.id, kind, &e.to_string(), Some(&perf))
        }
    }
}

/// The canonical coalescing key: the config's JSON with the name
/// cleared, so identical-modulo-name requests share one build.
fn canonical_key(cfg: &ProcessorConfig) -> Result<String, McpatError> {
    let mut c = cfg.clone();
    c.name.clear();
    serde_json::to_string(&c).map_err(|e| {
        McpatError::config(
            "serve.request.config",
            format!("configuration cannot be canonicalized: {e}"),
        )
    })
}

enum Claim {
    Builder(Arc<BuildSlot>),
    Waiter(Arc<BuildSlot>),
}

/// Claims the key in the coalesce map: first requester builds, later
/// ones wait. The map lock is held only for the lookup/insert.
fn claim(shared: &Shared, key: &str) -> Claim {
    let mut builds = lock(&shared.builds);
    if let Some(slot) = builds.get(key) {
        Claim::Waiter(Arc::clone(slot))
    } else {
        let slot = Arc::new(BuildSlot::new());
        builds.insert(key.to_owned(), Arc::clone(&slot));
        Claim::Builder(slot)
    }
}

/// Publishes the build outcome and retires the key: waiters wake with
/// the shared result, and the *next* identical request goes straight
/// to the (now warm) solve cache instead of the coalesce map.
fn publish(
    shared: &Shared,
    key: &str,
    slot: &BuildSlot,
    outcome: Result<Arc<Processor>, McpatError>,
) {
    lock(&shared.builds).remove(key);
    *lock(&slot.done) = Some(outcome);
    slot.cv.notify_all();
}

/// Publishes a defensive error if the builder exits without publishing
/// (unreachable in the panic-free core; waiters must never hang).
struct PublishGuard<'a> {
    shared: &'a Shared,
    key: &'a str,
    slot: &'a BuildSlot,
    armed: bool,
}

impl Drop for PublishGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            publish(
                self.shared,
                self.key,
                self.slot,
                Err(McpatError::config(
                    "serve.coalesce",
                    "builder aborted before publishing an outcome",
                )),
            );
        }
    }
}

/// Parks on an in-flight identical build, checking this request's own
/// budget at every heartbeat so a waiter's deadline still trips while
/// someone else builds.
fn wait_for_build(slot: &BuildSlot) -> Result<Result<Arc<Processor>, McpatError>, McpatError> {
    let mut done = lock(&slot.done);
    loop {
        if let Some(outcome) = done.as_ref() {
            return Ok(outcome.clone());
        }
        mcpat::guard::check()
            .map_err(|g| McpatError::Budget(AtPath::new("serve.coalesce.wait", g)))?;
        let (guard, _) = slot
            .cv
            .wait_timeout(done, WAIT_POLL)
            .unwrap_or_else(PoisonError::into_inner);
        done = guard;
    }
}

/// Renders the report of a shared build re-labeled with this request's
/// own config name — the same relabel contract the solve cache and
/// `explore_batch` honor, so the text is byte-identical to a fresh
/// build of the named config.
fn relabeled_report(chip: &Processor, cfg: &ProcessorConfig) -> String {
    let mut own = chip.clone();
    own.config.name.clone_from(&cfg.name);
    own.report()
}

/// Builds the config (or coalesces onto an identical in-flight build)
/// and renders its report.
fn evaluate(
    shared: &Shared,
    cfg: &ProcessorConfig,
    built: &mut bool,
    coalesced: &mut bool,
) -> Result<String, McpatError> {
    let key = canonical_key(cfg)?;
    match claim(shared, &key) {
        Claim::Builder(slot) => {
            *built = true;
            let hold = crate::eval_hold_ms();
            if hold > 0 {
                std::thread::sleep(Duration::from_millis(hold));
            }
            let mut guard = PublishGuard {
                shared,
                key: &key,
                slot: &slot,
                armed: true,
            };
            let outcome = Processor::build(cfg).map(Arc::new);
            guard.armed = false;
            drop(guard);
            publish(shared, &key, &slot, outcome.clone());
            Ok(outcome?.report())
        }
        Claim::Waiter(slot) => {
            shared
                .counters
                .coalesced_requests
                .fetch_add(1, Ordering::SeqCst);
            match wait_for_build(&slot)? {
                Ok(chip) => {
                    *coalesced = true;
                    Ok(relabeled_report(&chip, cfg))
                }
                Err(e) if e.guard_error().is_some() => {
                    // The *builder's* budget tripped — a fact about its
                    // circumstances, not this config (the solve cache
                    // draws the same line). Build it ourselves under
                    // our own budget.
                    *built = true;
                    Processor::build(cfg).map(|chip| chip.report())
                }
                Err(e) => {
                    // Deterministic failure: a fact about the config,
                    // shared like a successful build.
                    *coalesced = true;
                    Err(e)
                }
            }
        }
    }
}
