//! The wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, in order.
//! Requests are parsed leniently through [`serde_json::Value`] so
//! optional fields (`id`, `deadline_ms`, `preset`) stay optional;
//! responses are rendered by hand so field presence is explicit and
//! the output is one stable line regardless of the vendored
//! serializer's conventions.
//!
//! Request envelopes:
//!
//! ```json
//! {"type":"evaluate","id":7,"preset":"tulsa","deadline_ms":500}
//! {"type":"evaluate","config":{...ProcessorConfig...}}
//! {"type":"stats"}
//! {"type":"ping"}
//! {"type":"shutdown"}
//! ```
//!
//! Response envelopes (`id` echoed when the request carried one):
//!
//! ```json
//! {"id":7,"status":"ok","type":"evaluate","report":"...","perf":{...}}
//! {"id":7,"status":"error","error":{"kind":"DeadlineExceeded","message":"..."},"perf":{...}}
//! {"status":"ok","type":"stats","stats":{"solve_cache":{...},"pool":{...},"server":{...}}}
//! ```
//!
//! `error.kind` is a closed vocabulary: `InvalidRequest` (malformed
//! envelope), `InvalidConfig`, `Infeasible`, `DeadlineExceeded`,
//! `Cancelled`, `MemoryBudget` (budget trips, named by
//! [`mcpat::guard::GuardError::kind`]), and `Overloaded` (admission
//! cap).

use mcpat::array::memo::SolveCacheStats;
use mcpat::par::pool::PoolStats;
use mcpat::ProcessorConfig;
use serde_json::Value;
use std::fmt::Write as _;

/// Upper bound on one buffered request line; a client that streams
/// more than this without a newline is answered with `InvalidRequest`
/// and disconnected (a config envelope is a few KiB).
pub const MAX_REQUEST_BYTES: usize = 4 << 20;

/// A parsed request envelope.
#[derive(Debug)]
pub enum Request {
    /// Build the configuration and return its report.
    Evaluate(Box<EvaluateRequest>),
    /// Cumulative cache/pool/server counters.
    Stats {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<u64>,
    },
    /// Liveness probe.
    Ping {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<u64>,
    },
    /// Ask the server to drain and exit (the wire analog of SIGTERM).
    Shutdown {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<u64>,
    },
}

/// An `evaluate` request.
#[derive(Debug)]
pub struct EvaluateRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// The configuration to model.
    pub config: ProcessorConfig,
    /// Per-request build deadline, milliseconds.
    pub deadline_ms: Option<u64>,
}

/// A request that could not be parsed into a [`Request`].
#[derive(Debug)]
pub struct ProtoError {
    /// Correlation id, when the envelope got far enough to carry one.
    pub id: Option<u64>,
    /// Wire error kind: `InvalidRequest` or `InvalidConfig`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    fn request(id: Option<u64>, message: impl Into<String>) -> ProtoError {
        ProtoError {
            id,
            kind: "InvalidRequest",
            message: message.into(),
        }
    }

    fn config(id: Option<u64>, message: impl Into<String>) -> ProtoError {
        ProtoError {
            id,
            kind: "InvalidConfig",
            message: message.into(),
        }
    }
}

/// Parses one request line.
///
/// # Errors
///
/// [`ProtoError`] with kind `InvalidRequest` for a malformed envelope
/// and `InvalidConfig` for a well-formed envelope whose configuration
/// (inline or preset) is unusable.
pub fn parse(line: &str) -> Result<Request, ProtoError> {
    let v: Value = serde_json::from_str(line)
        .map_err(|e| ProtoError::request(None, format!("not valid JSON: {e}")))?;
    if v.as_map().is_none() {
        return Err(ProtoError::request(None, "request must be a JSON object"));
    }
    let id = v.get("id").and_then(Value::as_u64);
    let Some(typ) = v.get("type").and_then(Value::as_str) else {
        return Err(ProtoError::request(id, "missing `type` field"));
    };
    match typ {
        "evaluate" => {
            let deadline_ms = match v.get("deadline_ms") {
                None => None,
                Some(d) => Some(d.as_u64().ok_or_else(|| {
                    ProtoError::request(id, "`deadline_ms` must be a non-negative integer")
                })?),
            };
            let config = match (v.get("config"), v.get("preset")) {
                (Some(_), Some(_)) => {
                    return Err(ProtoError::request(
                        id,
                        "give `config` or `preset`, not both",
                    ));
                }
                (None, None) => {
                    return Err(ProtoError::request(
                        id,
                        "evaluate needs a `config` object or a `preset` name",
                    ));
                }
                (Some(c), None) => {
                    serde_json::from_value::<ProcessorConfig>(c.clone()).map_err(|e| {
                        ProtoError::config(
                            id,
                            format!("`config` is not a valid processor config: {e}"),
                        )
                    })?
                }
                (None, Some(p)) => {
                    let name = p
                        .as_str()
                        .ok_or_else(|| ProtoError::request(id, "`preset` must be a string"))?;
                    crate::preset(name)
                        .ok_or_else(|| ProtoError::config(id, format!("unknown preset `{name}`")))?
                }
            };
            Ok(Request::Evaluate(Box::new(EvaluateRequest {
                id,
                config,
                deadline_ms,
            })))
        }
        "stats" => Ok(Request::Stats { id }),
        "ping" => Ok(Request::Ping { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err(ProtoError::request(
            id,
            format!("unknown request type `{other}`"),
        )),
    }
}

/// Per-request billing, returned in the `perf` field of an `evaluate`
/// response (success or typed failure): exactly the work this request
/// caused, observed by its own scoped collector.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestPerf {
    /// Wall-clock time spent serving the request, milliseconds.
    pub wall_ms: f64,
    /// This request ran the chip build itself.
    pub built: bool,
    /// This request coalesced onto another request's identical
    /// in-flight build instead of duplicating it.
    pub coalesced: bool,
    /// Solve-cache hits billed to this request.
    pub solve_cache_hits: u64,
    /// Solve-cache misses (full solves) billed to this request.
    pub solve_cache_misses: u64,
    /// Subset of hits that parked on an in-flight identical solve.
    pub solve_cache_coalesced: u64,
    /// Cache evictions observed while this request was active.
    pub solve_cache_evictions: u64,
    /// Pool tasks submitted by this request.
    pub pool_submitted: u64,
    /// Pool tasks of this request stolen by other workers.
    pub pool_steals: u64,
    /// Closures this request ran inline instead of submitting.
    pub pool_inline: u64,
    /// Heap allocations billed to this request (0 without a probe).
    pub allocs: u64,
}

/// The server-side counters reported by a `stats` response.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStatsView {
    /// Requests received (any type, including rejected ones).
    pub requests: u64,
    /// Requests answered `"status":"ok"`.
    pub ok: u64,
    /// Requests answered `"status":"error"` (all kinds).
    pub errors: u64,
    /// Evaluations rejected at the admission cap.
    pub overloaded: u64,
    /// Evaluations that tripped their own deadline.
    pub deadline_exceeded: u64,
    /// Evaluations that coalesced onto an identical in-flight build.
    pub coalesced_requests: u64,
    /// Evaluations currently admitted and running.
    pub in_flight: u64,
    /// The admission cap (0 = unbounded).
    pub max_inflight: u64,
    /// Whether the server is draining.
    pub draining: bool,
}

/// Appends a JSON string literal (quoted, escaped) to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends the leading `"id":N,` when the request carried an id.
fn push_id(out: &mut String, id: Option<u64>) {
    if let Some(id) = id {
        let _ = write!(out, "\"id\":{id},");
    }
}

/// Renders a finite, non-negative JSON number from an `f64` ratio;
/// non-finite values (which the guarded stat constructors never
/// produce) degrade to `0` rather than emitting invalid JSON.
fn push_ratio(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

fn push_perf(out: &mut String, p: &RequestPerf) {
    let _ = write!(
        out,
        "{{\"wall_ms\":{:.3},\"built\":{},\"coalesced\":{},\
         \"solve_cache_hits\":{},\"solve_cache_misses\":{},\
         \"solve_cache_coalesced\":{},\"solve_cache_evictions\":{},\
         \"pool_submitted\":{},\"pool_steals\":{},\"pool_inline\":{},\
         \"allocs\":{}}}",
        p.wall_ms,
        p.built,
        p.coalesced,
        p.solve_cache_hits,
        p.solve_cache_misses,
        p.solve_cache_coalesced,
        p.solve_cache_evictions,
        p.pool_submitted,
        p.pool_steals,
        p.pool_inline,
        p.allocs,
    );
}

/// A successful `evaluate` response. The `report` field is exactly the
/// text the one-shot CLI prints for the same configuration.
#[must_use]
pub fn evaluate_response(id: Option<u64>, report: &str, perf: &RequestPerf) -> String {
    let mut out = String::with_capacity(report.len() + 320);
    out.push('{');
    push_id(&mut out, id);
    out.push_str("\"status\":\"ok\",\"type\":\"evaluate\",\"report\":");
    push_json_str(&mut out, report);
    out.push_str(",\"perf\":");
    push_perf(&mut out, perf);
    out.push('}');
    out
}

/// A typed error response; `perf` is attached when the request got far
/// enough to be billed (admitted evaluations).
#[must_use]
pub fn error_response(
    id: Option<u64>,
    kind: &str,
    message: &str,
    perf: Option<&RequestPerf>,
) -> String {
    let mut out = String::with_capacity(message.len() + 256);
    out.push('{');
    push_id(&mut out, id);
    out.push_str("\"status\":\"error\",\"error\":{\"kind\":");
    push_json_str(&mut out, kind);
    out.push_str(",\"message\":");
    push_json_str(&mut out, message);
    out.push('}');
    if let Some(p) = perf {
        out.push_str(",\"perf\":");
        push_perf(&mut out, p);
    }
    out.push('}');
    out
}

/// A `ping` response.
#[must_use]
pub fn pong_response(id: Option<u64>) -> String {
    let mut out = String::from("{");
    push_id(&mut out, id);
    out.push_str("\"status\":\"ok\",\"type\":\"pong\"}");
    out
}

/// A `shutdown` acknowledgment; the server drains after sending it.
#[must_use]
pub fn shutdown_response(id: Option<u64>) -> String {
    let mut out = String::from("{");
    push_id(&mut out, id);
    out.push_str("\"status\":\"ok\",\"type\":\"shutdown\",\"draining\":true}");
    out
}

/// A `stats` response: cumulative solve-cache, pool, and server
/// counters. The hit rate comes from
/// [`SolveCacheStats::hit_rate`], which is `0.0` (not NaN) when no
/// lookups have occurred.
#[must_use]
pub fn stats_response(
    id: Option<u64>,
    cache: &SolveCacheStats,
    pool: &PoolStats,
    server: &ServerStatsView,
) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    push_id(&mut out, id);
    out.push_str("\"status\":\"ok\",\"type\":\"stats\",\"stats\":{");
    let _ = write!(
        out,
        "\"solve_cache\":{{\"hits\":{},\"misses\":{},\"coalesced\":{},\
         \"entries\":{},\"evictions\":{},\"bytes\":{},\"lookups\":{},\"hit_rate\":",
        cache.hits,
        cache.misses,
        cache.coalesced,
        cache.entries,
        cache.evictions,
        cache.bytes,
        cache.lookups(),
    );
    push_ratio(&mut out, cache.hit_rate());
    let _ = write!(
        out,
        "}},\"pool\":{{\"workers\":{},\"submitted\":{},\"steals\":{},\
         \"inline_execs\":{},\"workers_respawned\":{}}}",
        pool.workers, pool.submitted, pool.steals, pool.inline_execs, pool.workers_respawned,
    );
    let _ = write!(
        out,
        ",\"server\":{{\"requests\":{},\"ok\":{},\"errors\":{},\
         \"overloaded\":{},\"deadline_exceeded\":{},\"coalesced_requests\":{},\
         \"in_flight\":{},\"max_inflight\":{},\"draining\":{}}}",
        server.requests,
        server.ok,
        server.errors,
        server.overloaded,
        server.deadline_exceeded,
        server.coalesced_requests,
        server.in_flight,
        server.max_inflight,
        server.draining,
    );
    out.push_str("}}");
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_malformed_envelopes_with_typed_kinds() {
        assert_eq!(parse("not json").unwrap_err().kind, "InvalidRequest");
        assert_eq!(parse("[1,2]").unwrap_err().kind, "InvalidRequest");
        assert_eq!(parse("{\"id\":3}").unwrap_err().id, Some(3));
        assert_eq!(
            parse("{\"type\":\"evaluate\"}").unwrap_err().kind,
            "InvalidRequest"
        );
        assert_eq!(
            parse("{\"type\":\"evaluate\",\"preset\":\"no-such\"}")
                .unwrap_err()
                .kind,
            "InvalidConfig"
        );
        assert_eq!(
            parse("{\"type\":\"evaluate\",\"preset\":\"tulsa\",\"deadline_ms\":-1}")
                .unwrap_err()
                .kind,
            "InvalidRequest"
        );
        assert_eq!(
            parse("{\"type\":\"warp\"}").unwrap_err().message,
            "unknown request type `warp`"
        );
    }

    #[test]
    fn parse_accepts_presets_and_round_trips_configs() {
        let r =
            parse("{\"type\":\"evaluate\",\"id\":9,\"preset\":\"niagara\",\"deadline_ms\":250}")
                .unwrap();
        let Request::Evaluate(e) = r else {
            panic!("expected evaluate")
        };
        assert_eq!(e.id, Some(9));
        assert_eq!(e.deadline_ms, Some(250));
        assert_eq!(e.config.name, ProcessorConfig::niagara().name);

        let cfg = ProcessorConfig::tulsa();
        let line = format!(
            "{{\"type\":\"evaluate\",\"config\":{}}}",
            serde_json::to_string(&cfg).unwrap()
        );
        let Request::Evaluate(e) = parse(&line).unwrap() else {
            panic!("expected evaluate")
        };
        assert_eq!(e.config, cfg);
        assert!(matches!(
            parse("{\"type\":\"stats\"}").unwrap(),
            Request::Stats { id: None }
        ));
        assert!(matches!(
            parse("{\"type\":\"shutdown\",\"id\":1}").unwrap(),
            Request::Shutdown { id: Some(1) }
        ));
    }

    #[test]
    fn responses_are_single_line_json_with_escaped_reports() {
        let perf = RequestPerf {
            wall_ms: 1.25,
            built: true,
            ..RequestPerf::default()
        };
        let line = evaluate_response(Some(4), "two\nlines \"quoted\"", &perf);
        assert!(!line.contains('\n'), "{line}");
        let v: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(4));
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(
            v.get("report").and_then(Value::as_str),
            Some("two\nlines \"quoted\"")
        );
        let p = v.get("perf").unwrap();
        assert_eq!(p.get("built").and_then(Value::as_bool), Some(true));
        assert_eq!(p.get("solve_cache_misses").and_then(Value::as_u64), Some(0));

        let err = error_response(None, "Overloaded", "cap", None);
        let v: Value = serde_json::from_str(&err).unwrap();
        assert!(v.get("id").is_none());
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Value::as_str),
            Some("Overloaded")
        );
    }

    #[test]
    fn stats_response_is_well_defined_with_zero_lookups() {
        // The empty-cache path: no lookups at all must render a finite
        // hit_rate of 0, never NaN (which is not even valid JSON).
        let cache = SolveCacheStats::default();
        assert_eq!(cache.lookups(), 0);
        let line = stats_response(
            None,
            &cache,
            &PoolStats::default(),
            &ServerStatsView::default(),
        );
        let v: Value = serde_json::from_str(&line).unwrap();
        let sc = v.get("stats").and_then(|s| s.get("solve_cache")).unwrap();
        assert_eq!(
            sc.get("hit_rate").and_then(Value::as_f64).map(f64::to_bits),
            Some(0.0f64.to_bits())
        );
        assert_eq!(sc.get("lookups").and_then(Value::as_u64), Some(0));
        let srv = v.get("stats").and_then(|s| s.get("server")).unwrap();
        assert_eq!(srv.get("draining").and_then(Value::as_bool), Some(false));
    }
}
