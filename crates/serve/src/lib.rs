//! `mcpat-serve` — a long-running evaluation daemon for the model.
//!
//! The warm solve cache makes a repeat build of a known configuration
//! orders of magnitude cheaper than a cold one, but a one-shot `mcpat`
//! process throws that cache away on exit. This crate keeps it alive:
//! `mcpat serve --listen ADDR` accepts concurrent model-evaluation
//! requests over a line-delimited JSON protocol on plain TCP (no HTTP
//! dependency), sharing the content-addressed solve cache and the
//! persistent work-stealing pool across every request — the shape of an
//! estimation *service* that architecture-exploration flows drive
//! programmatically.
//!
//! Governance and billing are per request:
//!
//! - every `evaluate` request runs under its own [`mcpat::guard`]
//!   budget (`deadline_ms` in the request envelope), so one slow
//!   request cannot stall the daemon, and trips surface as typed
//!   `error.kind` values (`DeadlineExceeded`, `Cancelled`, ...);
//! - a server-wide admission cap bounds concurrent evaluations; over
//!   the cap the daemon answers immediately with a typed `Overloaded`
//!   rejection instead of queueing unboundedly;
//! - every request gets its own scoped [`mcpat::obs`] collector, so
//!   the response envelope bills exactly the cache misses, pool
//!   traffic, and allocations that request caused;
//! - concurrent requests for the *same* configuration (modulo its
//!   report name) coalesce onto one build — a thundering herd of an
//!   identical config costs one solve, mirroring `explore_batch`'s
//!   dedupe.
//!
//! A `stats` request exposes the cumulative solve-cache counters
//! (entries, bytes, evictions, hit rate), pool counters, and the
//! server's own admission bookkeeping. SIGTERM (and SIGINT) ask the
//! daemon to *drain*: in-flight requests finish and are answered, no
//! new connections are accepted, and the process exits cleanly.
//!
//! See `DESIGN.md` §13 for the protocol schema and drain semantics.

use mcpat::ProcessorConfig;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub mod proto;
pub mod server;

pub use proto::{EvaluateRequest, ProtoError, Request, RequestPerf};
pub use server::{ServeOptions, Server, ServerHandle};

/// Process-global drain request, set by the daemon's signal handler.
/// Servers poll it between accepts and between requests.
static SIGNAL_DRAIN: AtomicBool = AtomicBool::new(false);

/// Asks every server in the process to drain: finish in-flight
/// requests, refuse new connections, and return from `run`. A single
/// atomic store — async-signal-safe, callable from a SIGTERM handler.
pub fn request_drain() {
    SIGNAL_DRAIN.store(true, Ordering::SeqCst);
}

/// Whether a process-wide drain has been requested.
#[must_use]
pub fn drain_requested() -> bool {
    SIGNAL_DRAIN.load(Ordering::SeqCst)
}

/// Test-only reset of the process-wide drain flag, so one test's
/// drain does not leak into the next server started in this process.
#[doc(hidden)]
pub fn reset_drain_for_tests() {
    SIGNAL_DRAIN.store(false, Ordering::SeqCst);
}

/// Test-only hold applied by the *building* side of a coalesced
/// evaluation before the build starts, so tests can deterministically
/// overlap a second identical request (which must coalesce) or an
/// over-cap request (which must be rejected) with an in-flight build.
/// Zero (the default) holds nothing. Out-of-process smoke tests set
/// the same hold via the `MCPAT_SERVE_EVAL_HOLD_MS` knob; the longer
/// of the two applies.
static EVAL_HOLD_MS: AtomicU64 = AtomicU64::new(0);

#[doc(hidden)]
pub fn set_eval_hold_ms(ms: u64) {
    EVAL_HOLD_MS.store(ms, Ordering::SeqCst);
}

pub(crate) fn eval_hold_ms() -> u64 {
    EVAL_HOLD_MS
        .load(Ordering::SeqCst)
        .max(mcpat::knobs::serve_eval_hold_ms())
}

/// The built-in example configurations, by CLI/request `preset` name.
#[must_use]
pub fn preset(name: &str) -> Option<ProcessorConfig> {
    match name {
        "niagara" => Some(ProcessorConfig::niagara()),
        "niagara2" => Some(ProcessorConfig::niagara2()),
        "alpha21364" => Some(ProcessorConfig::alpha21364()),
        "tulsa" | "xeon-tulsa" => Some(ProcessorConfig::tulsa()),
        _ => None,
    }
}
