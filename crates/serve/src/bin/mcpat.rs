//! The `mcpat` command-line front-end — the analog of the original
//! McPAT executable, with JSON instead of XML as the interface format.
//!
//! ```text
//! mcpat --preset niagara                 # model a built-in preset
//! mcpat --preset niagara --floorplan     # + ASCII floorplan sketch
//! mcpat --preset niagara --emit-config   # dump its JSON config template
//! mcpat --preset niagara --validate      # diagnostics only, no build
//! mcpat chip.json                        # model a JSON configuration
//! mcpat chip.json --stats stats.json     # + runtime power from stats
//! mcpat --preset tulsa --trace t.json    # + JSON build trace (spans)
//! mcpat serve --listen 127.0.0.1:9439    # long-running evaluation daemon
//! ```
//!
//! Exit codes: 0 success, 2 usage error, 3 invalid configuration,
//! 4 infeasible model (an array could not be solved), 5 budget
//! exceeded (`--deadline-ms` elapsed or the build was cancelled).

use mcpat::{
    AxisGrid, ChipStats, DseCheckpoint, DseOptions, Metric, Processor, ProcessorConfig,
    WorkloadModel,
};
use std::process::ExitCode;
use std::time::Duration;

/// A classified CLI failure; the variant picks the exit code.
enum CliError {
    /// Bad invocation: unknown flag, missing operand, no config. Exit 2.
    Usage(String),
    /// The configuration is unreadable, malformed, or fails
    /// validation. Exit 3.
    InvalidConfig(String),
    /// The configuration is well-formed but no feasible model exists
    /// (the array solver exhausted its relaxation ladder). Exit 4.
    Infeasible(String),
    /// The build tripped a resource budget: `--deadline-ms` elapsed or
    /// a `--cancel-on-signal` signal arrived. Exit 5.
    Budget(String),
}

impl CliError {
    fn exit_code(&self) -> ExitCode {
        match self {
            CliError::Usage(_) => ExitCode::from(2),
            CliError::InvalidConfig(_) => ExitCode::from(3),
            CliError::Infeasible(_) => ExitCode::from(4),
            CliError::Budget(_) => ExitCode::from(5),
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::InvalidConfig(m)
            | CliError::Infeasible(m)
            | CliError::Budget(m) => m,
        }
    }
}

/// Minimal SIGINT/SIGTERM hook for `--cancel-on-signal`: instead of the
/// default process kill, a signal flips every live budget's cancel flag
/// so the in-flight build unwinds through its checkpoints and exits
/// with the typed budget error (exit 5) and no partial report.
#[cfg(unix)]
mod sig {
    /// C `sighandler_t` shape (`void (*)(int)`).
    type Handler = extern "C" fn(i32);
    extern "C" {
        // From libc, which every `*-linux-gnu`/`*-apple-*` binary
        // already links; declared directly to avoid a dependency.
        fn signal(signum: i32, handler: Handler) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" fn on_signal(_sig: i32) {
        // A single atomic fetch-add: async-signal-safe.
        mcpat::guard::cancel_all();
    }
    pub fn install() {
        // SAFETY: `signal` with a non-returning-into-Rust, async-signal-
        // safe handler function pointer is the documented C contract.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
    extern "C" fn on_drain_signal(_sig: i32) {
        // A single atomic store: async-signal-safe. Drain — finish
        // in-flight requests — rather than cancel them.
        mcpat_serve::request_drain();
    }
    pub fn install_drain() {
        // SAFETY: as for `install` — async-signal-safe handler.
        unsafe {
            signal(SIGINT, on_drain_signal);
            signal(SIGTERM, on_drain_signal);
        }
    }
}

use mcpat_serve::preset;

fn usage() -> &'static str {
    "usage: mcpat [--preset <niagara|niagara2|alpha21364|tulsa>] [options]\n\
     \x20      mcpat <config.json> [options]\n\
     \x20      mcpat dse --axes <spec> [options]   (see `mcpat dse --help`)\n\
     \x20      mcpat serve --listen <addr> [options]  (see `mcpat serve --help`)\n\
     \n\
     options:\n\
     \x20 --stats <file>   evaluate runtime power from a mcpat::ChipStats JSON file\n\
     \x20 --validate       print every validation diagnostic, do not build\n\
     \x20 --emit-config    dump the configuration as a JSON template and exit\n\
     \x20 --floorplan      append an ASCII floorplan sketch to the report\n\
     \x20 --trace <file>   enable build tracing and write the span trace as JSON\n\
     \x20 --deadline-ms <n> abort the build if it runs longer than n milliseconds\n\
     \x20 --cancel-on-signal  SIGINT/SIGTERM cancels the build cooperatively\n\
     \n\
     Models the configured processor and prints the power/area/timing\n\
     report. Exit codes: 0 success, 2 usage error, 3 invalid\n\
     configuration, 4 infeasible model, 5 budget exceeded (deadline\n\
     elapsed or cancelled)."
}

/// Classifies a build/sweep error into the CLI's typed exit codes.
fn classify(e: mcpat::McpatError) -> CliError {
    if e.guard_error().is_some() {
        return CliError::Budget(e.to_string());
    }
    match e {
        mcpat::McpatError::Invalid(_) => CliError::InvalidConfig(e.to_string()),
        mcpat::McpatError::Array(_) | mcpat::McpatError::Budget(_) => {
            CliError::Infeasible(e.to_string())
        }
    }
}

fn dse_usage() -> &'static str {
    "usage: mcpat dse --axes <spec> [options]\n\
     \n\
     axes spec (semicolon-separated, all five required):\n\
     \x20 nodes=45,32            tech nodes, nm\n\
     \x20 flavors=hp,lstp,lop    device flavors\n\
     \x20 cores=2,4,8            core counts\n\
     \x20 l2=512K,1M,2M          L2 capacity per cluster (K/M suffixes)\n\
     \x20 clocks=1e9:3e9:100     clock linspace lo:hi:count, or a comma list in Hz\n\
     \n\
     options:\n\
     \x20 --chunk <n>            candidates per streamed batch (default 256)\n\
     \x20 --checkpoint <file>    write a resumable checkpoint to <file> periodically\n\
     \x20 --checkpoint-every <n> checkpoint cadence in candidates (default 4096)\n\
     \x20 --resume <file>        resume from a checkpoint written by --checkpoint\n\
     \x20 --out <file>           write the final frontier as checkpoint JSON\n\
     \x20 --max-area <m2>        reject candidates over this die area\n\
     \x20 --max-peak-power <w>   reject candidates over this peak power\n\
     \x20 --no-prune             build every candidate (disable lower-bound pruning)\n\
     \x20 --deadline-ms <n>      abort the sweep after n milliseconds (resumable)\n\
     \x20 --cancel-on-signal     SIGINT/SIGTERM cancels the sweep cooperatively\n\
     \n\
     Streams the cross product of the axes through delta rebuilds and an\n\
     incremental Pareto frontier; memory stays O(frontier + chunk)."
}

/// Parses a comma-separated list with a per-item parser.
fn parse_list<T>(
    field: &str,
    text: &str,
    mut one: impl FnMut(&str) -> Result<T, String>,
) -> Result<Vec<T>, CliError> {
    text.split(',')
        .map(|s| one(s.trim()).map_err(|e| CliError::Usage(format!("--axes {field}: {e}"))))
        .collect()
}

/// Parses a byte count with an optional K/M suffix (powers of two).
fn parse_bytes(text: &str) -> Result<u64, String> {
    let (digits, shift) = if let Some(d) = text.strip_suffix(['K', 'k']) {
        (d, 10)
    } else if let Some(d) = text.strip_suffix(['M', 'm']) {
        (d, 20)
    } else {
        (text, 0)
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("`{text}` is not a byte count (e.g. 512K, 2M)"))?;
    Ok(n << shift)
}

/// Parses the clock axis: either `lo:hi:count` (inclusive linspace) or a
/// comma-separated list of frequencies in Hz.
fn parse_clocks(text: &str) -> Result<Vec<f64>, CliError> {
    let parts: Vec<&str> = text.split(':').collect();
    if let [lo, hi, count] = parts.as_slice() {
        let lo: f64 = lo
            .trim()
            .parse()
            .map_err(|_| CliError::Usage(format!("--axes clocks: `{lo}` is not a frequency")))?;
        let hi: f64 = hi
            .trim()
            .parse()
            .map_err(|_| CliError::Usage(format!("--axes clocks: `{hi}` is not a frequency")))?;
        let count: usize = count.trim().parse().map_err(|_| {
            CliError::Usage(format!("--axes clocks: `{count}` is not a point count"))
        })?;
        if count == 0 {
            return Err(CliError::Usage("--axes clocks: count must be > 0".into()));
        }
        if count == 1 {
            return Ok(vec![lo]);
        }
        let step = (hi - lo) / (count - 1) as f64;
        return Ok((0..count).map(|i| lo + step * i as f64).collect());
    }
    parse_list("clocks", text, |s| {
        s.parse::<f64>()
            .map_err(|_| format!("`{s}` is not a frequency in Hz"))
    })
}

/// Parses the full `--axes` spec into a grid.
fn parse_axes(spec: &str) -> Result<AxisGrid, CliError> {
    let mut nodes = None;
    let mut flavors = None;
    let mut cores = None;
    let mut l2 = None;
    let mut clocks = None;
    for field in spec.split(';') {
        let field = field.trim();
        if field.is_empty() {
            continue;
        }
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| CliError::Usage(format!("--axes: `{field}` is not key=value")))?;
        match key.trim() {
            "nodes" => {
                nodes = Some(parse_list("nodes", value, |s| match s {
                    "180" => Ok(mcpat::tech::TechNode::N180),
                    "90" => Ok(mcpat::tech::TechNode::N90),
                    "65" => Ok(mcpat::tech::TechNode::N65),
                    "45" => Ok(mcpat::tech::TechNode::N45),
                    "32" => Ok(mcpat::tech::TechNode::N32),
                    "22" => Ok(mcpat::tech::TechNode::N22),
                    other => Err(format!("unknown node `{other}` (180/90/65/45/32/22)")),
                })?);
            }
            "flavors" => {
                flavors = Some(parse_list("flavors", value, |s| {
                    match s.to_ascii_lowercase().as_str() {
                        "hp" => Ok(mcpat::tech::DeviceType::Hp),
                        "lstp" => Ok(mcpat::tech::DeviceType::Lstp),
                        "lop" => Ok(mcpat::tech::DeviceType::Lop),
                        other => Err(format!("unknown flavor `{other}` (hp/lstp/lop)")),
                    }
                })?);
            }
            "cores" => {
                cores = Some(parse_list("cores", value, |s| {
                    s.parse::<u32>()
                        .map_err(|_| format!("`{s}` is not a count"))
                })?);
            }
            "l2" => {
                l2 = Some(parse_list("l2", value, parse_bytes)?);
            }
            "clocks" => {
                clocks = Some(parse_clocks(value)?);
            }
            other => {
                return Err(CliError::Usage(format!("--axes: unknown axis `{other}`")));
            }
        }
    }
    let missing = |what: &str| CliError::Usage(format!("--axes: missing `{what}=` axis"));
    Ok(AxisGrid::manycore(
        nodes.ok_or_else(|| missing("nodes"))?,
        flavors.ok_or_else(|| missing("flavors"))?,
        cores.ok_or_else(|| missing("cores"))?,
        l2.ok_or_else(|| missing("l2"))?,
        clocks.ok_or_else(|| missing("clocks"))?,
    ))
}

/// Writes checkpoint JSON atomically (tmp file + rename), so a sweep
/// killed mid-write never leaves a truncated checkpoint behind.
fn write_checkpoint(path: &str, cp: &DseCheckpoint) -> Result<(), CliError> {
    let json = cp
        .to_json()
        .map_err(|e| CliError::InvalidConfig(e.to_string()))?;
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, json)
        .map_err(|e| CliError::InvalidConfig(format!("cannot write `{tmp}`: {e}")))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| CliError::InvalidConfig(format!("cannot rename `{tmp}`: {e}")))?;
    Ok(())
}

/// The `mcpat dse` subcommand: a streaming design-space sweep.
fn run_dse(args: &[String]) -> Result<(), CliError> {
    if matches!(
        args.first().map(String::as_str),
        None | Some("--help" | "-h")
    ) {
        println!("{}", dse_usage());
        return Ok(());
    }
    let mut grid: Option<AxisGrid> = None;
    let mut opts = DseOptions {
        checkpoint_every: 4096,
        ..DseOptions::default()
    };
    let mut checkpoint_path: Option<String> = None;
    let mut resume_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut cancel_on_signal = false;
    let mut i = 0;
    while let Some(arg) = args.get(i) {
        let value = |name: &str| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--axes" => {
                grid = Some(parse_axes(&value("--axes")?)?);
                i += 2;
            }
            "--chunk" => {
                let v = value("--chunk")?;
                opts.chunk = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--chunk: `{v}` is not a number")))?;
                i += 2;
            }
            "--checkpoint" => {
                checkpoint_path = Some(value("--checkpoint")?);
                i += 2;
            }
            "--checkpoint-every" => {
                let v = value("--checkpoint-every")?;
                opts.checkpoint_every = v.parse().map_err(|_| {
                    CliError::Usage(format!("--checkpoint-every: `{v}` is not a number"))
                })?;
                i += 2;
            }
            "--resume" => {
                resume_path = Some(value("--resume")?);
                i += 2;
            }
            "--out" => {
                out_path = Some(value("--out")?);
                i += 2;
            }
            "--max-area" => {
                let v = value("--max-area")?;
                opts.budgets.max_area = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--max-area: `{v}` is not a number")))?;
                i += 2;
            }
            "--max-peak-power" => {
                let v = value("--max-peak-power")?;
                opts.budgets.max_peak_power = v.parse().map_err(|_| {
                    CliError::Usage(format!("--max-peak-power: `{v}` is not a number"))
                })?;
                i += 2;
            }
            "--no-prune" => {
                opts.prune = false;
                i += 1;
            }
            "--deadline-ms" => {
                let v = value("--deadline-ms")?;
                deadline_ms = Some(v.parse().map_err(|_| {
                    CliError::Usage(format!("--deadline-ms: `{v}` is not a number"))
                })?);
                i += 2;
            }
            "--cancel-on-signal" => {
                cancel_on_signal = true;
                i += 1;
            }
            flag => {
                return Err(CliError::Usage(format!(
                    "dse: unknown argument `{flag}`\n{}",
                    dse_usage()
                )));
            }
        }
    }
    let grid =
        grid.ok_or_else(|| CliError::Usage(format!("dse: --axes is required\n{}", dse_usage())))?;
    let resume = resume_path
        .map(|path| {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| CliError::InvalidConfig(format!("cannot read `{path}`: {e}")))?;
            DseCheckpoint::from_json(&text).map_err(|e| CliError::InvalidConfig(e.to_string()))
        })
        .transpose()?;

    #[cfg(unix)]
    if cancel_on_signal {
        sig::install();
    }
    #[cfg(not(unix))]
    let _ = cancel_on_signal;
    let budget = match deadline_ms {
        Some(ms) => Some(mcpat::guard::Budget::with_deadline(Duration::from_millis(
            ms,
        ))),
        None if cancel_on_signal => Some(mcpat::guard::Budget::unbounded()),
        None => None,
    };
    let _budget_scope = budget.as_ref().map(mcpat::guard::Budget::enter);

    println!(
        "dse: {} candidates ({} nodes x {} flavors x {} core counts x {} L2 sizes x {} clocks){}",
        grid.total(),
        grid.nodes.len(),
        grid.device_types.len(),
        grid.core_counts.len(),
        grid.l2_bytes.len(),
        grid.clocks_hz.len(),
        resume
            .as_ref()
            .map(|cp| format!(", resuming at cursor {}", cp.cursor()))
            .unwrap_or_default(),
    );
    let mut evaluator = WorkloadModel::default();
    let checkpoint_sink = |cp: &DseCheckpoint| -> Result<(), mcpat::McpatError> {
        if let Some(path) = &checkpoint_path {
            write_checkpoint(path, cp)
                .map_err(|e| mcpat::McpatError::config("dse.checkpoint", e.message().to_owned()))?;
        }
        Ok(())
    };
    let result = mcpat::dse_streaming(
        &grid,
        &opts,
        &mut evaluator,
        resume.as_ref(),
        checkpoint_sink,
    )
    .map_err(|e| {
        let e = classify(e);
        if let (CliError::Budget(_), Some(path)) = (&e, &checkpoint_path) {
            eprintln!("mcpat: sweep interrupted; resume with --resume {path}");
        }
        e
    })?;

    println!(
        "dse: frontier {} / offered {} (pruned {}, rejected {}, deduped {})",
        result.frontier.len(),
        result.frontier.offered(),
        result.perf.pruned,
        result.perf.rejected,
        result.perf.deduped,
    );
    println!(
        "dse: builds: {} probes, {} cache rebuilds, {} full",
        result.perf.probes, result.perf.cache_rebuilds, result.perf.full_builds,
    );
    for metric in Metric::ALL {
        if let Some(best) = result.frontier.best(metric) {
            println!(
                "  best {:<6} {}  (delay {:.3e} s, energy {:.3e} J, area {:.1} mm2, peak {:.1} W)",
                format!("{metric:?}"),
                best.name,
                best.metrics.delay,
                best.metrics.energy,
                best.area * 1e6,
                best.peak_power,
            );
        }
    }
    if let Some(path) = &out_path {
        let cp = result.final_checkpoint(&grid);
        write_checkpoint(path, &cp)?;
        println!("dse: frontier written to {path}");
    }
    Ok(())
}

fn serve_usage() -> &'static str {
    "usage: mcpat serve --listen <host:port> [options]\n\
     \n\
     options:\n\
     \x20 --listen <addr>     address to listen on (e.g. 127.0.0.1:9439; port 0\n\
     \x20                     binds an ephemeral port, printed at startup)\n\
     \x20 --max-inflight <n>  concurrent evaluation cap; further requests get a\n\
     \x20                     typed `Overloaded` rejection (0 = unbounded;\n\
     \x20                     default: the MCPAT_SERVE_MAX_INFLIGHT knob)\n\
     \n\
     Runs a long-lived evaluation daemon over a line-delimited JSON\n\
     protocol: one request per line, one response line each. The solve\n\
     cache and worker pool are shared across requests; each request is\n\
     billed and budgeted separately (see DESIGN.md §13). SIGTERM/SIGINT\n\
     drain in-flight requests and exit cleanly."
}

/// The `mcpat serve` subcommand: the long-running evaluation daemon.
fn run_serve(args: &[String]) -> Result<(), CliError> {
    if matches!(args.first().map(String::as_str), Some("--help" | "-h")) {
        println!("{}", serve_usage());
        return Ok(());
    }
    let mut listen: Option<String> = None;
    let mut opts = mcpat_serve::ServeOptions::default();
    let mut i = 0;
    while let Some(arg) = args.get(i) {
        let value = |name: &str| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--listen" => {
                listen = Some(value("--listen")?);
                i += 2;
            }
            "--max-inflight" => {
                let v = value("--max-inflight")?;
                opts.max_inflight = v.parse().map_err(|_| {
                    CliError::Usage(format!("--max-inflight: `{v}` is not a number"))
                })?;
                i += 2;
            }
            flag => {
                return Err(CliError::Usage(format!(
                    "serve: unknown argument `{flag}`\n{}",
                    serve_usage()
                )));
            }
        }
    }
    let listen = listen.ok_or_else(|| {
        CliError::Usage(format!("serve: --listen is required\n{}", serve_usage()))
    })?;
    let server = mcpat_serve::Server::bind(&listen, &opts)
        .map_err(|e| CliError::InvalidConfig(format!("cannot listen on `{listen}`: {e}")))?;
    #[cfg(unix)]
    sig::install_drain();
    println!("serve: listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server
        .run()
        .map_err(|e| CliError::InvalidConfig(format!("serve: {e}")))?;
    println!("serve: drained, exiting");
    Ok(())
}

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let first = args.first().map(String::as_str);
    if matches!(first, None | Some("--help" | "-h")) {
        println!("{}", usage());
        return Ok(());
    }
    if first == Some("dse") {
        return run_dse(args.get(1..).unwrap_or_default());
    }
    if first == Some("serve") {
        return run_serve(args.get(1..).unwrap_or_default());
    }

    let mut emit_config = false;
    let mut validate_only = false;
    let mut show_floorplan = false;
    let mut trace_path: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut cancel_on_signal = false;
    let mut config: Option<ProcessorConfig> = None;
    let mut stats: Option<ChipStats> = None;
    let mut i = 0;
    while let Some(arg) = args.get(i) {
        match arg.as_str() {
            "--preset" => {
                let name = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage("--preset needs a name".into()))?;
                config = Some(
                    preset(name)
                        .ok_or_else(|| CliError::Usage(format!("unknown preset `{name}`")))?,
                );
                i += 2;
            }
            "--stats" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage("--stats needs a file path".into()))?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError::InvalidConfig(format!("cannot read `{path}`: {e}")))?;
                stats = Some(serde_json::from_str(&text).map_err(|e| {
                    CliError::InvalidConfig(format!("`{path}` is not a valid stats file: {e}"))
                })?);
                i += 2;
            }
            "--emit-config" => {
                emit_config = true;
                i += 1;
            }
            "--validate" => {
                validate_only = true;
                i += 1;
            }
            "--floorplan" => {
                show_floorplan = true;
                i += 1;
            }
            "--trace" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage("--trace needs a file path".into()))?;
                trace_path = Some(path.clone());
                i += 2;
            }
            "--deadline-ms" => {
                let ms = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage("--deadline-ms needs a number".into()))?;
                deadline_ms = Some(ms.parse().map_err(|_| {
                    CliError::Usage(format!("--deadline-ms: `{ms}` is not a number"))
                })?);
                i += 2;
            }
            "--cancel-on-signal" => {
                cancel_on_signal = true;
                i += 1;
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "unknown flag `{flag}`\n{}",
                    usage()
                )));
            }
            path => {
                if config.is_some() {
                    return Err(CliError::Usage(format!(
                        "unexpected operand `{path}` (use --stats <file> for a stats file)\n{}",
                        usage()
                    )));
                }
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError::InvalidConfig(format!("cannot read `{path}`: {e}")))?;
                config = Some(serde_json::from_str(&text).map_err(|e| {
                    CliError::InvalidConfig(format!("`{path}` is not a valid config: {e}"))
                })?);
                i += 1;
            }
        }
    }

    let config =
        config.ok_or_else(|| CliError::Usage(format!("no configuration given\n{}", usage())))?;
    if emit_config {
        let json = serde_json::to_string_pretty(&config)
            .map_err(|e| CliError::InvalidConfig(format!("serialization failed: {e}")))?;
        println!("{json}");
        return Ok(());
    }

    if validate_only {
        let diags = config.validate();
        if diags.is_empty() {
            println!("{}: configuration is valid", config.name);
            return Ok(());
        }
        println!(
            "{}: {} finding{} ({} error{}):",
            config.name,
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
            diags.error_count(),
            if diags.error_count() == 1 { "" } else { "s" },
        );
        println!("{diags}");
        if diags.has_errors() {
            return Err(CliError::InvalidConfig(
                "configuration failed validation".into(),
            ));
        }
        return Ok(());
    }

    if trace_path.is_some() {
        mcpat::obs::set_tracing(true);
    }
    #[cfg(unix)]
    if cancel_on_signal {
        sig::install();
    }
    #[cfg(not(unix))]
    let _ = cancel_on_signal;
    // A budget scope is opened whenever either governance flag is set:
    // a plain `--cancel-on-signal` run gets an unbounded budget that a
    // signal can cancel.
    let budget = match deadline_ms {
        Some(ms) => Some(mcpat::guard::Budget::with_deadline(Duration::from_millis(
            ms,
        ))),
        None if cancel_on_signal => Some(mcpat::guard::Budget::unbounded()),
        None => None,
    };
    let _budget_scope = budget.as_ref().map(mcpat::guard::Budget::enter);
    let chip = Processor::build(&config).map_err(|e| {
        if e.guard_error().is_some() {
            CliError::Budget(e.to_string())
        } else {
            match e {
                mcpat::McpatError::Invalid(_) => CliError::InvalidConfig(e.to_string()),
                mcpat::McpatError::Array(_) | mcpat::McpatError::Budget(_) => {
                    CliError::Infeasible(e.to_string())
                }
            }
        }
    })?;
    if let Some(path) = &trace_path {
        let json = chip
            .trace
            .as_ref()
            .map_or_else(|| mcpat::obs::Trace::default().to_json(), |t| t.to_json());
        std::fs::write(path, json)
            .map_err(|e| CliError::InvalidConfig(format!("cannot write `{path}`: {e}")))?;
    }
    println!("{}", chip.report());
    if show_floorplan {
        println!("Floorplan:");
        println!("{}", chip.floorplan_sketch());
    }

    if let Some(stats) = stats {
        let p = chip.runtime_power(&stats);
        println!(
            "Runtime power over {:.3e} s: {:.2} W",
            stats.duration_s,
            p.total()
        );
        for item in &p.items {
            println!(
                "  {:<12} {:>7.2} W (dyn {:>6.2}, leak {:>6.2})",
                item.name,
                item.total(),
                item.dynamic,
                item.leakage.total()
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mcpat: {}", e.message());
            e.exit_code()
        }
    }
}
