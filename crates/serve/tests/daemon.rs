#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Integration tests for the serve daemon: protocol behavior,
//! admission control, deadlines, coalescing, drain, and the
//! byte-identity contract between a wire `report` and the one-shot
//! CLI's stdout for the same configuration.

use mcpat::ProcessorConfig;
use mcpat_serve::{ServeOptions, Server, ServerHandle};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serializes tests that touch the process-global eval-hold hook.
static HOLD_LOCK: Mutex<()> = Mutex::new(());

/// Resets the eval hold even if the owning test fails an assert.
struct HoldReset;
impl Drop for HoldReset {
    fn drop(&mut self) {
        mcpat_serve::set_eval_hold_ms(0);
    }
}

/// Starts an in-process server on an ephemeral loopback port.
fn start_server(max_inflight: usize) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server =
        Server::bind("127.0.0.1:0", &ServeOptions { max_inflight }).expect("bind loopback");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    (handle, join)
}

/// One client connection with line-oriented send/receive.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("send");
        self.stream.write_all(b"\n").expect("send newline");
        self.stream.flush().expect("flush");
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        serde_json::from_str(&line).expect("response is valid JSON")
    }

    fn roundtrip(&mut self, line: &str) -> Value {
        self.send(line);
        self.recv()
    }
}

fn status(v: &Value) -> &str {
    v.get("status").and_then(Value::as_str).expect("status")
}

fn error_kind(v: &Value) -> &str {
    v.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Value::as_str)
        .expect("error.kind")
}

fn report(v: &Value) -> &str {
    v.get("report").and_then(Value::as_str).expect("report")
}

fn perf_u64(v: &Value, field: &str) -> u64 {
    v.get("perf")
        .and_then(|p| p.get(field))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("perf.{field} missing: {v:?}"))
}

fn perf_bool(v: &Value, field: &str) -> bool {
    v.get("perf")
        .and_then(|p| p.get(field))
        .and_then(Value::as_bool)
        .unwrap_or_else(|| panic!("perf.{field} missing: {v:?}"))
}

fn evaluate_line(cfg: &ProcessorConfig, id: u64) -> String {
    format!(
        "{{\"type\":\"evaluate\",\"id\":{id},\"config\":{}}}",
        serde_json::to_string(cfg).unwrap()
    )
}

/// A config no other test (or CLI preset default) builds, so hold-based
/// tests own their coalesce key.
fn distinct_config(name: &str, clock_hz: f64) -> ProcessorConfig {
    let mut cfg = ProcessorConfig::niagara();
    cfg.name = name.to_owned();
    cfg.clock_hz = clock_hz;
    cfg
}

#[test]
fn ping_stats_and_invalid_envelopes() {
    let (handle, join) = start_server(4);
    let mut c = Client::connect(&handle);

    let pong = c.roundtrip("{\"type\":\"ping\",\"id\":11}");
    assert_eq!(status(&pong), "ok");
    assert_eq!(pong.get("type").and_then(Value::as_str), Some("pong"));
    assert_eq!(pong.get("id").and_then(Value::as_u64), Some(11));

    // The stats envelope is well-defined even before any evaluation:
    // hit_rate must be a finite JSON number (satellite: no NaN on the
    // zero-lookup path).
    let stats = c.roundtrip("{\"type\":\"stats\"}");
    assert_eq!(status(&stats), "ok");
    let sc = stats
        .get("stats")
        .and_then(|s| s.get("solve_cache"))
        .expect("solve_cache block");
    let rate = sc
        .get("hit_rate")
        .and_then(Value::as_f64)
        .expect("hit_rate");
    assert!(rate.is_finite() && (0.0..=1.0).contains(&rate), "{rate}");
    let srv = stats
        .get("stats")
        .and_then(|s| s.get("server"))
        .expect("server block");
    assert_eq!(srv.get("max_inflight").and_then(Value::as_u64), Some(4));

    let bad = c.roundtrip("this is not json");
    assert_eq!(status(&bad), "error");
    assert_eq!(error_kind(&bad), "InvalidRequest");

    let unknown = c.roundtrip("{\"type\":\"evaluate\",\"preset\":\"pentium\"}");
    assert_eq!(error_kind(&unknown), "InvalidConfig");

    let invalid = {
        let mut cfg = ProcessorConfig::niagara();
        cfg.num_cores = 0;
        c.roundtrip(&evaluate_line(&cfg, 5))
    };
    assert_eq!(status(&invalid), "error");
    assert_eq!(error_kind(&invalid), "InvalidConfig");
    assert_eq!(invalid.get("id").and_then(Value::as_u64), Some(5));

    handle.request_drain();
    join.join().unwrap();
}

#[test]
fn evaluate_report_is_byte_identical_to_the_one_shot_cli() {
    let (handle, join) = start_server(4);
    let mut c = Client::connect(&handle);

    // Preset path: the wire report plus the CLI's trailing newline must
    // equal the one-shot process's stdout exactly.
    let resp = c.roundtrip("{\"type\":\"evaluate\",\"id\":1,\"preset\":\"tulsa\"}");
    assert_eq!(status(&resp), "ok", "{resp:?}");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_mcpat"))
        .args(["--preset", "tulsa"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let wire = format!("{}\n", report(&resp));
    assert_eq!(
        wire.as_bytes(),
        out.stdout.as_slice(),
        "wire report differs from one-shot CLI stdout"
    );

    // Config-object path, including a renamed config through the warm
    // cache: still byte-identical to a fresh CLI run of that file.
    let mut cfg = ProcessorConfig::niagara2();
    cfg.name = "renamed-niagara2".into();
    let resp = c.roundtrip(&evaluate_line(&cfg, 2));
    assert_eq!(status(&resp), "ok", "{resp:?}");
    let path = std::env::temp_dir().join("mcpat-serve-byte-identity.json");
    std::fs::write(&path, serde_json::to_string(&cfg).unwrap()).unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_mcpat"))
        .arg(&path)
        .output()
        .unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(out.status.success());
    let wire = format!("{}\n", report(&resp));
    assert_eq!(
        wire.as_bytes(),
        out.stdout.as_slice(),
        "renamed config wire report differs from one-shot CLI stdout"
    );

    handle.request_drain();
    join.join().unwrap();
}

#[test]
fn zero_deadline_trips_a_typed_deadline_error() {
    let (handle, join) = start_server(4);
    let mut c = Client::connect(&handle);
    // A zero deadline has already elapsed at the first cooperative
    // checkpoint — deterministic even with a warm cache.
    let line =
        format!("{{\"type\":\"evaluate\",\"id\":3,\"preset\":\"niagara\",\"deadline_ms\":0}}");
    let resp = c.roundtrip(&line);
    assert_eq!(status(&resp), "error", "{resp:?}");
    assert_eq!(error_kind(&resp), "DeadlineExceeded");
    assert_eq!(resp.get("id").and_then(Value::as_u64), Some(3));
    // The failed request is still billed: the envelope carries perf.
    assert!(resp.get("perf").is_some(), "{resp:?}");

    // The budget trip must not poison the key: the same config without
    // a deadline builds fine.
    let ok = c.roundtrip("{\"type\":\"evaluate\",\"id\":4,\"preset\":\"niagara\"}");
    assert_eq!(status(&ok), "ok", "{ok:?}");

    let stats = c.roundtrip("{\"type\":\"stats\"}");
    let srv = stats.get("stats").and_then(|s| s.get("server")).unwrap();
    assert!(
        srv.get("deadline_exceeded")
            .and_then(Value::as_u64)
            .unwrap()
            >= 1,
        "{stats:?}"
    );

    handle.request_drain();
    join.join().unwrap();
}

#[test]
fn over_cap_requests_get_a_typed_overloaded_rejection() {
    let _hold_lock = HOLD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = HoldReset;
    let (handle, join) = start_server(1);

    mcpat_serve::set_eval_hold_ms(400);
    let mut a = Client::connect(&handle);
    a.send(&evaluate_line(&distinct_config("overload-a", 1.21e9), 1));
    // Wait until A is admitted (stats bypasses admission, so it stays
    // answerable at the cap).
    let mut b = Client::connect(&handle);
    let t0 = Instant::now();
    loop {
        let stats = b.roundtrip("{\"type\":\"stats\"}");
        let in_flight = stats
            .get("stats")
            .and_then(|s| s.get("server"))
            .and_then(|s| s.get("in_flight"))
            .and_then(Value::as_u64)
            .unwrap();
        if in_flight >= 1 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "request A was never admitted"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let rejected = b.roundtrip(&evaluate_line(&distinct_config("overload-b", 1.22e9), 2));
    assert_eq!(status(&rejected), "error", "{rejected:?}");
    assert_eq!(error_kind(&rejected), "Overloaded");

    // A itself completes normally once the hold releases.
    let ok = a.recv();
    assert_eq!(status(&ok), "ok", "{ok:?}");
    mcpat_serve::set_eval_hold_ms(0);

    // With the slot free again, the previously rejected config passes.
    let retry = b.roundtrip(&evaluate_line(&distinct_config("overload-b", 1.22e9), 3));
    assert_eq!(status(&retry), "ok", "{retry:?}");

    let stats = b.roundtrip("{\"type\":\"stats\"}");
    let srv = stats.get("stats").and_then(|s| s.get("server")).unwrap();
    assert!(srv.get("overloaded").and_then(Value::as_u64).unwrap() >= 1);

    handle.request_drain();
    join.join().unwrap();
}

#[test]
fn identical_concurrent_requests_coalesce_onto_one_build() {
    let _hold_lock = HOLD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = HoldReset;
    let (handle, join) = start_server(8);

    // Distinct clock so no other test pre-warmed these solves; the hold
    // keeps A's build in flight long enough for B to provably overlap.
    let cfg_a = distinct_config("herd-a", 1.19e9);
    let cfg_b = distinct_config("herd-b", 1.19e9);
    mcpat_serve::set_eval_hold_ms(400);
    let mut a = Client::connect(&handle);
    let mut b = Client::connect(&handle);
    a.send(&evaluate_line(&cfg_a, 1));
    // B must arrive while A holds the coalesce key; admission happens
    // before the hold, so in_flight ≥ 1 guarantees the key is claimed.
    let mut probe = Client::connect(&handle);
    let t0 = Instant::now();
    loop {
        let stats = probe.roundtrip("{\"type\":\"stats\"}");
        let in_flight = stats
            .get("stats")
            .and_then(|s| s.get("server"))
            .and_then(|s| s.get("in_flight"))
            .and_then(Value::as_u64)
            .unwrap();
        if in_flight >= 1 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "request A was never admitted"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    b.send(&evaluate_line(&cfg_b, 2));
    let resp_a = a.recv();
    let resp_b = b.recv();
    mcpat_serve::set_eval_hold_ms(0);
    assert_eq!(status(&resp_a), "ok", "{resp_a:?}");
    assert_eq!(status(&resp_b), "ok", "{resp_b:?}");

    // Exactly one side ran the build; the other coalesced and paid no
    // solve misses of its own.
    assert!(perf_bool(&resp_a, "built"), "{resp_a:?}");
    assert!(!perf_bool(&resp_a, "coalesced"), "{resp_a:?}");
    assert!(perf_bool(&resp_b, "coalesced"), "{resp_b:?}");
    assert!(!perf_bool(&resp_b, "built"), "{resp_b:?}");
    assert!(perf_u64(&resp_a, "solve_cache_misses") > 0, "{resp_a:?}");
    assert_eq!(perf_u64(&resp_b, "solve_cache_misses"), 0, "{resp_b:?}");

    // Each report carries its own name in the header.
    assert!(report(&resp_a).contains("McPAT-rs report: herd-a"));
    assert!(report(&resp_b).contains("McPAT-rs report: herd-b"));

    // The coalesced relabel is byte-exact: B's report is the builder's
    // report with only the name header rewritten (the trailing Build
    // line records the shared build, so it matches too).
    let expect_b = report(&resp_a).replacen("herd-a", "herd-b", 1);
    assert_eq!(report(&resp_b), expect_b, "relabeled report diverged");

    let stats = probe.roundtrip("{\"type\":\"stats\"}");
    let srv = stats.get("stats").and_then(|s| s.get("server")).unwrap();
    assert!(
        srv.get("coalesced_requests")
            .and_then(Value::as_u64)
            .unwrap()
            >= 1
    );

    handle.request_drain();
    join.join().unwrap();
}

#[test]
fn shutdown_envelope_drains_and_run_returns() {
    let (handle, join) = start_server(2);
    let mut c = Client::connect(&handle);
    let ok = c.roundtrip("{\"type\":\"evaluate\",\"id\":1,\"preset\":\"alpha21364\"}");
    assert_eq!(status(&ok), "ok");

    let ack = c.roundtrip("{\"type\":\"shutdown\",\"id\":2}");
    assert_eq!(status(&ack), "ok");
    assert_eq!(ack.get("draining").and_then(Value::as_bool), Some(true));

    // run() returns: in-flight work was answered, the listener closed.
    join.join().unwrap();
    assert_eq!(handle.in_flight(), 0);
}
