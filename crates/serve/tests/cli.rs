#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Integration tests for the `mcpat` command-line front-end.
//!
//! Exit-code contract under test: 0 success, 2 usage error, 3 invalid
//! configuration, 4 infeasible model.

use std::process::Command;

fn mcpat_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mcpat"))
}

fn exit_code(out: &std::process::Output) -> i32 {
    out.status.code().expect("CLI terminated by signal")
}

const PRESETS: [&str; 4] = ["niagara", "niagara2", "alpha21364", "tulsa"];

#[test]
fn every_preset_produces_a_report() {
    for preset in PRESETS {
        let out = mcpat_bin().args(["--preset", preset]).output().unwrap();
        assert_eq!(exit_code(&out), 0, "preset {preset}");
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("McPAT-rs report:"), "preset {preset}: {text}");
        assert!(text.contains("Peak power"), "preset {preset}");
        assert!(text.contains("Die area"), "preset {preset}");
    }
}

#[test]
fn every_preset_emit_config_round_trips_identically() {
    for preset in PRESETS {
        let out = mcpat_bin()
            .args(["--preset", preset, "--emit-config"])
            .output()
            .unwrap();
        assert_eq!(exit_code(&out), 0, "preset {preset}");
        let json = String::from_utf8(out.stdout).unwrap();
        // The emitted JSON must deserialize back into exactly the
        // preset it came from — no field lost, renamed, or defaulted.
        let parsed: mcpat::ProcessorConfig = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("emitted config for {preset} does not parse: {e}"));
        let original = match preset {
            "niagara" => mcpat::ProcessorConfig::niagara(),
            "niagara2" => mcpat::ProcessorConfig::niagara2(),
            "alpha21364" => mcpat::ProcessorConfig::alpha21364(),
            "tulsa" => mcpat::ProcessorConfig::tulsa(),
            _ => unreachable!(),
        };
        assert_eq!(parsed, original, "round-trip of {preset} is not identity");
    }
}

#[test]
fn emit_config_round_trips_through_a_file() {
    let out = mcpat_bin()
        .args(["--preset", "tulsa", "--emit-config"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"xeon-tulsa\""));

    let dir = std::env::temp_dir();
    let path = dir.join("mcpat-cli-test-config.json");
    std::fs::write(&path, &json).unwrap();
    let out2 = mcpat_bin().arg(&path).output().unwrap();
    assert_eq!(exit_code(&out2), 0);
    let text = String::from_utf8(out2.stdout).unwrap();
    assert!(text.contains("McPAT-rs report: xeon-tulsa"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trace_flag_writes_a_span_trace_and_reports_it() {
    let path = std::env::temp_dir().join("mcpat-cli-test-trace.json");
    let out = mcpat_bin()
        .args(["--preset", "niagara2", "--trace"])
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 0);
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(
        report.contains("Trace ("),
        "report lacks a trace section:\n{report}"
    );
    assert!(report.contains("build.core"), "{report}");

    let json = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let parsed: serde_json::Value = serde_json::from_str(&json)
        .unwrap_or_else(|e| panic!("trace file is not valid JSON: {e}\n{json}"));
    assert_eq!(
        parsed.get("schema").and_then(serde_json::Value::as_str),
        Some("mcpat-trace-v1"),
        "{json}"
    );
    let spans = parsed
        .get("spans")
        .and_then(serde_json::Value::as_seq)
        .expect("trace has a spans array");
    assert!(
        spans
            .iter()
            .any(|s| { s.get("path").and_then(serde_json::Value::as_str) == Some("build") }),
        "trace lacks the root build span: {json}"
    );
}

#[test]
fn without_trace_flag_the_report_has_no_trace_section() {
    let out = mcpat_bin().args(["--preset", "niagara2"]).output().unwrap();
    assert_eq!(exit_code(&out), 0);
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(
        !report.contains("Trace ("),
        "tracing must stay off by default:\n{report}"
    );
}

#[test]
fn validate_mode_reports_a_valid_preset_without_building() {
    let out = mcpat_bin()
        .args(["--preset", "niagara", "--validate"])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 0);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("configuration is valid"), "{text}");
    assert!(!text.contains("Peak power"), "must not build a report");
}

#[test]
fn validate_mode_lists_diagnostics_and_exits_3_on_errors() {
    let mut cfg = mcpat::ProcessorConfig::niagara();
    cfg.num_cores = 0;
    cfg.clock_hz = -1.0;
    let dir = std::env::temp_dir();
    let path = dir.join("mcpat-cli-test-invalid.json");
    std::fs::write(&path, serde_json::to_string(&cfg).unwrap()).unwrap();
    let out = mcpat_bin().arg(&path).arg("--validate").output().unwrap();
    assert_eq!(exit_code(&out), 3);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("num_cores"), "{text}");
    assert!(text.contains("clock_hz"), "{text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn invalid_config_exits_3_with_located_diagnostics() {
    let mut cfg = mcpat::ProcessorConfig::niagara();
    cfg.num_cores = 0;
    let dir = std::env::temp_dir();
    let path = dir.join("mcpat-cli-test-zero-cores.json");
    std::fs::write(&path, serde_json::to_string(&cfg).unwrap()).unwrap();
    let out = mcpat_bin().arg(&path).output().unwrap();
    assert_eq!(exit_code(&out), 3);
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("num_cores"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn infeasible_model_exits_4() {
    // A set-aligned but absurdly large L2 passes validation yet cannot
    // be partitioned by the array solver even after relaxation.
    let mut cfg = mcpat::ProcessorConfig::niagara();
    cfg.l2.as_mut().unwrap().cache.capacity = (12u64 * 64) << 50;
    let dir = std::env::temp_dir();
    let path = dir.join("mcpat-cli-test-infeasible.json");
    std::fs::write(&path, serde_json::to_string(&cfg).unwrap()).unwrap();
    let out = mcpat_bin().arg(&path).output().unwrap();
    assert_eq!(exit_code(&out), 4);
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("array solver"), "{err}");
    assert!(err.contains("l2"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unknown_preset_is_a_usage_error() {
    let out = mcpat_bin().args(["--preset", "pentium"]).output().unwrap();
    assert_eq!(exit_code(&out), 2);
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown preset"));
}

#[test]
fn malformed_json_config_exits_3() {
    let dir = std::env::temp_dir();
    let path = dir.join("mcpat-cli-test-garbage.json");
    std::fs::write(&path, "{ not json }").unwrap();
    let out = mcpat_bin().arg(&path).output().unwrap();
    assert_eq!(exit_code(&out), 3);
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("not a valid config"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unreadable_config_path_exits_3() {
    let out = mcpat_bin()
        .arg("/nonexistent/mcpat-nope.json")
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 3);
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = mcpat_bin().args(["--perset", "niagara"]).output().unwrap();
    assert_eq!(exit_code(&out), 2);
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown flag"), "{err}");
    assert!(err.contains("usage:"));
}

#[test]
fn missing_config_is_a_usage_error() {
    let out = mcpat_bin().arg("--floorplan").output().unwrap();
    assert_eq!(exit_code(&out), 2);
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("no configuration given"), "{err}");
}

#[test]
fn stray_second_path_is_a_usage_error() {
    // The old interface silently guessed a second bare path was a stats
    // file; it must now direct the user to --stats.
    let dir = std::env::temp_dir();
    let path = dir.join("mcpat-cli-test-second.json");
    std::fs::write(
        &path,
        serde_json::to_string(&mcpat::ProcessorConfig::niagara()).unwrap(),
    )
    .unwrap();
    let out = mcpat_bin().arg(&path).arg(&path).output().unwrap();
    assert_eq!(exit_code(&out), 2);
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--stats"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn help_flag_prints_usage() {
    let out = mcpat_bin().arg("--help").output().unwrap();
    assert_eq!(exit_code(&out), 0);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("usage: mcpat"));
}

#[test]
fn stats_flag_adds_runtime_section() {
    // Build a stats file from the library, then feed it to the CLI.
    let cfg = mcpat::ProcessorConfig::niagara();
    let stats = mcpat::ChipStats::peak(1e-3, 8, cfg.clock_hz, 1, 1);
    let dir = std::env::temp_dir();
    let cfg_path = dir.join("mcpat-cli-test-n.json");
    let stats_path = dir.join("mcpat-cli-test-s.json");
    std::fs::write(&cfg_path, serde_json::to_string(&cfg).unwrap()).unwrap();
    std::fs::write(&stats_path, serde_json::to_string(&stats).unwrap()).unwrap();
    let out = mcpat_bin()
        .arg(&cfg_path)
        .arg("--stats")
        .arg(&stats_path)
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 0);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Runtime power"), "{text}");
    let _ = std::fs::remove_file(&cfg_path);
    let _ = std::fs::remove_file(&stats_path);
}

#[test]
fn malformed_stats_file_exits_3() {
    let dir = std::env::temp_dir();
    let cfg_path = dir.join("mcpat-cli-test-cfg-ok.json");
    let stats_path = dir.join("mcpat-cli-test-stats-bad.json");
    std::fs::write(
        &cfg_path,
        serde_json::to_string(&mcpat::ProcessorConfig::niagara()).unwrap(),
    )
    .unwrap();
    std::fs::write(&stats_path, "][").unwrap();
    let out = mcpat_bin()
        .arg(&cfg_path)
        .arg("--stats")
        .arg(&stats_path)
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 3);
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("not a valid stats file"), "{err}");
    let _ = std::fs::remove_file(&cfg_path);
    let _ = std::fs::remove_file(&stats_path);
}

#[test]
fn serve_without_listen_is_a_usage_error() {
    let out = mcpat_bin().arg("serve").output().unwrap();
    assert_eq!(exit_code(&out), 2);
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--listen is required"), "{err}");
    assert!(err.contains("usage: mcpat serve"), "{err}");
}

#[test]
fn serve_with_unparseable_cap_is_a_usage_error() {
    let out = mcpat_bin()
        .args(["serve", "--listen", "127.0.0.1:0", "--max-inflight", "lots"])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 2);
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("is not a number"), "{err}");
}
