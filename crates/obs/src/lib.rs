//! # mcpat-obs — span-scoped tracing and metrics for the mcpat stack
//!
//! The modeling layers (solve cache, work-stealing pool, allocator
//! probe) maintain process-global monotonic counters that are useful
//! for whole-process dashboards but **wrong** for per-call attribution:
//! two concurrent `Processor::build` calls differencing the same global
//! counter each see the other's traffic. This crate provides the scoped
//! alternative:
//!
//! * [`Collector`] — a cheap-to-clone, thread-safe bag of counters.
//!   [`Collector::enter`] pushes it onto a **thread-local scope chain**;
//!   every event recorded while the chain is active bills *every*
//!   collector on the chain, so nested scopes (a build inside an
//!   exploration) each see exactly the traffic that happened inside
//!   them.
//! * [`ScopeChain`] / [`current_chain`] — a `Send + Sync` snapshot of
//!   the chain, captured when work is handed to another thread (the
//!   `mcpat-par` pool captures it at task submission). Activating the
//!   chain on the executing thread makes stolen work bill the
//!   *submitting* scope, not the thief.
//! * Event seams — [`record_solve`], [`record_pool_submitted`],
//!   [`record_pool_steal`], [`record_pool_inline`] — called by
//!   `mcpat-array`'s memo cache and `mcpat-par`'s pool next to their
//!   global counters.
//! * Allocation attribution — [`register_alloc_probe`] accepts a
//!   `fn() -> u64` returning the **calling thread's** allocation count
//!   (a binary with a counting `#[global_allocator]` registers one).
//!   Deltas are flushed to the active chain at every chain switch, so
//!   allocations bill the scope that was active when they happened,
//!   on whichever thread they happened.
//! * Structured spans — [`span`] records component path, wall time,
//!   cache outcome and relaxation events into every enclosing
//!   collector, but **only** when tracing is enabled via
//!   [`set_tracing`]; when disabled (the default) a span is a single
//!   relaxed atomic load. [`Trace`] bundles the span list with counter
//!   totals and exports hand-rolled JSON for `--trace FILE`.
//!
//! Scope guards are `!Send` and must drop in LIFO order (ordinary Rust
//! scoping guarantees this); the chain itself is a persistent linked
//! list of `Arc` nodes, so capturing it is O(1).

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Counter totals observed by one [`Collector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Solve-cache hits billed to this scope.
    pub solve_cache_hits: u64,
    /// Solve-cache misses (full solves) billed to this scope.
    pub solve_cache_misses: u64,
    /// Hits that waited for an in-flight identical solve.
    pub solve_cache_coalesced: u64,
    /// Solve-cache entries evicted (CLOCK cap) while this scope was
    /// active — nonzero means the working set exceeds the cache cap.
    pub solve_cache_evictions: u64,
    /// Tasks submitted to the pool from inside this scope.
    pub pool_submitted: u64,
    /// Pool tasks submitted by this scope that another worker stole.
    pub pool_steals: u64,
    /// Closures this scope ran inline instead of submitting.
    pub pool_inline: u64,
    /// Heap allocations billed to this scope (0 unless a probe is
    /// registered via [`register_alloc_probe`]).
    pub allocs: u64,
    /// DSE candidates killed by the frontier's lower-bound prune before
    /// any build ran.
    pub dse_pruned: u64,
    /// DSE candidates served by an incremental delta rebuild (a probe)
    /// instead of a full build.
    pub dse_probes: u64,
    /// DSE candidates (and row bases) that needed a full chip build.
    pub dse_full_builds: u64,
}

/// One completed [`span`]: a named phase with wall time and the cache /
/// relaxation outcome observed while it was open.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Component path, e.g. `build.core`.
    pub path: String,
    /// Wall-clock duration of the span, seconds.
    pub wall_s: f64,
    /// Solve-cache hits observed inside the span.
    pub solve_cache_hits: u64,
    /// Solve-cache misses observed inside the span.
    pub solve_cache_misses: u64,
    /// Heap allocations observed inside the span (0 without a probe).
    pub allocs: u64,
    /// Relaxation events noted via [`SpanGuard::note_relaxations`].
    pub relaxations: u64,
}

#[derive(Default)]
struct Inner {
    solve_cache_hits: AtomicU64,
    solve_cache_misses: AtomicU64,
    solve_cache_coalesced: AtomicU64,
    solve_cache_evictions: AtomicU64,
    pool_submitted: AtomicU64,
    pool_steals: AtomicU64,
    pool_inline: AtomicU64,
    allocs: AtomicU64,
    dse_pruned: AtomicU64,
    dse_probes: AtomicU64,
    dse_full_builds: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A scoped counter bag. Clones share the same counters.
#[derive(Clone, Default)]
pub struct Collector {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl Collector {
    /// A fresh collector with all counters at zero.
    #[must_use]
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Pushes this collector onto the current thread's scope chain.
    /// Until the returned guard drops, every event recorded on this
    /// thread — and on any pool worker executing tasks submitted from
    /// inside the scope — bills this collector (and every outer one).
    #[must_use]
    pub fn enter(&self) -> ScopeGuard {
        flush_allocs();
        let prev = chain_head();
        let node = Arc::new(Node {
            collector: self.clone(),
            parent: prev.clone(),
        });
        set_chain_head(Some(node));
        ScopeGuard {
            prev,
            _not_send: PhantomData,
        }
    }

    /// Current counter totals.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let i = &self.inner;
        Snapshot {
            solve_cache_hits: i.solve_cache_hits.load(Ordering::Relaxed),
            solve_cache_misses: i.solve_cache_misses.load(Ordering::Relaxed),
            solve_cache_coalesced: i.solve_cache_coalesced.load(Ordering::Relaxed),
            solve_cache_evictions: i.solve_cache_evictions.load(Ordering::Relaxed),
            pool_submitted: i.pool_submitted.load(Ordering::Relaxed),
            pool_steals: i.pool_steals.load(Ordering::Relaxed),
            pool_inline: i.pool_inline.load(Ordering::Relaxed),
            allocs: i.allocs.load(Ordering::Relaxed),
            dse_pruned: i.dse_pruned.load(Ordering::Relaxed),
            dse_probes: i.dse_probes.load(Ordering::Relaxed),
            dse_full_builds: i.dse_full_builds.load(Ordering::Relaxed),
        }
    }

    /// The spans recorded inside this scope plus the counter totals.
    /// Spans are only recorded while [`set_tracing`]`(true)` is active.
    #[must_use]
    pub fn trace(&self) -> Trace {
        let spans = self
            .inner
            .spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        Trace {
            spans,
            totals: self.snapshot(),
        }
    }

    fn push_span(&self, rec: SpanRecord) {
        self.inner
            .spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(rec);
    }
}

struct Node {
    collector: Collector,
    parent: Option<Arc<Node>>,
}

thread_local! {
    static HEAD: Cell<Option<Arc<Node>>> = const { Cell::new(None) };
    static ALLOC_MARK: Cell<u64> = const { Cell::new(0) };
}

fn chain_head() -> Option<Arc<Node>> {
    HEAD.with(|h| {
        let head = h.take();
        let copy = head.clone();
        h.set(head);
        copy
    })
}

fn set_chain_head(head: Option<Arc<Node>>) {
    HEAD.with(|h| h.set(head));
}

/// Applies `f` to every collector on the current thread's chain.
fn bill(f: impl Fn(&Inner)) {
    HEAD.with(|h| {
        let head = h.take();
        let mut cur = head.as_ref();
        while let Some(node) = cur {
            f(&node.collector.inner);
            cur = node.parent.as_ref();
        }
        h.set(head);
    });
}

/// Drop guard returned by [`Collector::enter`]. `!Send`; drop in LIFO
/// order (ordinary scoping).
pub struct ScopeGuard {
    prev: Option<Arc<Node>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        flush_allocs();
        set_chain_head(self.prev.take());
    }
}

/// A `Send + Sync` snapshot of a thread's scope chain, captured with
/// [`current_chain`] when work is handed to another thread.
#[derive(Clone, Default)]
pub struct ScopeChain {
    head: Option<Arc<Node>>,
}

// SAFETY-free: Arc<Node> is Send + Sync because Collector's interior is
// atomics plus a Mutex; the auto traits propagate. (No unsafe impls —
// this comment documents why the derive-free struct is still shareable.)
impl ScopeChain {
    /// Installs this chain on the current thread until the guard drops,
    /// restoring whatever chain was active before. Allocation deltas
    /// are flushed on both switches so they bill the right scope.
    #[must_use]
    pub fn activate(&self) -> ChainGuard {
        flush_allocs();
        let prev = chain_head();
        set_chain_head(self.head.clone());
        ChainGuard {
            prev,
            _not_send: PhantomData,
        }
    }
}

/// The scope chain active on the current thread (empty if none).
#[must_use]
pub fn current_chain() -> ScopeChain {
    ScopeChain { head: chain_head() }
}

/// Drop guard returned by [`ScopeChain::activate`].
pub struct ChainGuard {
    prev: Option<Arc<Node>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ChainGuard {
    fn drop(&mut self) {
        flush_allocs();
        set_chain_head(self.prev.take());
    }
}

// ---------------------------------------------------------------------------
// Event seams (called by mcpat-array's memo cache and mcpat-par's pool).
// ---------------------------------------------------------------------------

/// Bills one solve-cache lookup outcome to the active scope chain.
pub fn record_solve(hit: bool, coalesced: bool) {
    bill(|i| {
        if hit {
            i.solve_cache_hits.fetch_add(1, Ordering::Relaxed);
            if coalesced {
                i.solve_cache_coalesced.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            i.solve_cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Bills `n` solve-cache evictions to the active scope chain (the memo
/// cache calls this when the CLOCK cap forces entries out).
pub fn record_solve_evictions(n: u64) {
    if n > 0 {
        bill(|i| {
            i.solve_cache_evictions.fetch_add(n, Ordering::Relaxed);
        });
    }
}

/// Bills `n` pool task submissions to the active scope chain.
pub fn record_pool_submitted(n: u64) {
    if n > 0 {
        bill(|i| {
            i.pool_submitted.fetch_add(n, Ordering::Relaxed);
        });
    }
}

/// Bills one steal to the active scope chain. The pool activates the
/// *submitter's* captured chain before calling this, so the steal bills
/// the scope that submitted the task, not the thief's own scope.
pub fn record_pool_steal() {
    bill(|i| {
        i.pool_steals.fetch_add(1, Ordering::Relaxed);
    });
}

/// Bills `n` inline (non-submitted) closure executions to the active
/// scope chain.
pub fn record_pool_inline(n: u64) {
    if n > 0 {
        bill(|i| {
            i.pool_inline.fetch_add(n, Ordering::Relaxed);
        });
    }
}

/// Bills `n` lower-bound-pruned DSE candidates to the active scope
/// chain (the streaming explorer calls this for candidates it never
/// builds).
pub fn record_dse_pruned(n: u64) {
    if n > 0 {
        bill(|i| {
            i.dse_pruned.fetch_add(n, Ordering::Relaxed);
        });
    }
}

/// Bills `n` incremental delta-rebuild probes to the active scope chain.
pub fn record_dse_probes(n: u64) {
    if n > 0 {
        bill(|i| {
            i.dse_probes.fetch_add(n, Ordering::Relaxed);
        });
    }
}

/// Bills `n` full DSE chip builds to the active scope chain.
pub fn record_dse_full_builds(n: u64) {
    if n > 0 {
        bill(|i| {
            i.dse_full_builds.fetch_add(n, Ordering::Relaxed);
        });
    }
}

// ---------------------------------------------------------------------------
// Allocation attribution.
// ---------------------------------------------------------------------------

static ALLOC_PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Registers a callback that reports the **calling thread's** heap
/// allocation count (a binary with a counting `#[global_allocator]`
/// registers one; see `benchline`). Returns `false` if a probe was
/// already registered (the first registration wins).
pub fn register_alloc_probe(probe: fn() -> u64) -> bool {
    ALLOC_PROBE.set(probe).is_ok()
}

/// Bills allocations made since the last flush to the chain that was
/// active while they happened. Called automatically at every chain
/// switch; call it manually before snapshotting a collector that is
/// still entered on the current thread.
pub fn flush_allocs() {
    let Some(probe) = ALLOC_PROBE.get() else {
        return;
    };
    let now = probe();
    ALLOC_MARK.with(|mark| {
        let delta = now.saturating_sub(mark.get());
        mark.set(now);
        if delta > 0 {
            bill(|i| {
                i.allocs.fetch_add(delta, Ordering::Relaxed);
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------------

static TRACING: AtomicBool = AtomicBool::new(false);

/// Globally enables or disables span recording. Scoped *counters* are
/// always on; spans are the opt-in part. Enabling tracing must not
/// change any model output (asserted in `tests/perf_identity.rs`).
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
#[must_use]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Opens a named span. When tracing is disabled this is one relaxed
/// atomic load and the guard is inert. When enabled, the span gets an
/// ephemeral [`Collector`] on the scope chain; on drop a [`SpanRecord`]
/// is appended to every collector that encloses the span.
#[must_use]
pub fn span(path: &str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard {
            active: None,
            _not_send: PhantomData,
        };
    }
    flush_allocs();
    let collector = Collector::new();
    let prev = chain_head();
    let node = Arc::new(Node {
        collector: collector.clone(),
        parent: prev.clone(),
    });
    set_chain_head(Some(node));
    SpanGuard {
        active: Some(ActiveSpan {
            path: path.to_owned(),
            start: Instant::now(),
            collector,
            prev,
            relaxations: Cell::new(0),
        }),
        _not_send: PhantomData,
    }
}

struct ActiveSpan {
    path: String,
    start: Instant,
    collector: Collector,
    prev: Option<Arc<Node>>,
    relaxations: Cell<u64>,
}

/// Drop guard returned by [`span`]. `!Send`; drop in LIFO order.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Notes `n` relaxation events (solver fallbacks, degraded clock
    /// targets) against this span. Inert when tracing is disabled.
    pub fn note_relaxations(&self, n: u64) {
        if let Some(active) = &self.active {
            active
                .relaxations
                .set(active.relaxations.get().saturating_add(n));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        flush_allocs();
        set_chain_head(active.prev.clone());
        let snap = active.collector.snapshot();
        let rec = SpanRecord {
            path: active.path,
            wall_s: active.start.elapsed().as_secs_f64(),
            solve_cache_hits: snap.solve_cache_hits,
            solve_cache_misses: snap.solve_cache_misses,
            allocs: snap.allocs,
            relaxations: active.relaxations.get(),
        };
        // Every enclosing collector gets the record: the build's own
        // collector exports it via `trace()`, and an outer benchmark
        // scope can summarize spans across many builds.
        let mut cur = active.prev.as_ref();
        while let Some(node) = cur {
            node.collector.push_span(rec.clone());
            cur = node.parent.as_ref();
        }
    }
}

// ---------------------------------------------------------------------------
// Trace export.
// ---------------------------------------------------------------------------

/// A completed trace: the spans recorded inside one collector scope
/// plus that scope's counter totals.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Spans in completion order (children before parents).
    pub spans: Vec<SpanRecord>,
    /// Counter totals for the whole scope.
    pub totals: Snapshot,
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl Trace {
    /// Serializes the trace as a stable, self-describing JSON document
    /// (`schema: "mcpat-trace-v1"`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 160);
        out.push_str("{\n  \"schema\": \"mcpat-trace-v1\",\n  \"totals\": {");
        let t = self.totals;
        out.push_str(&format!(
            "\n    \"solve_cache_hits\": {},\n    \"solve_cache_misses\": {},\n    \
             \"solve_cache_coalesced\": {},\n    \"solve_cache_evictions\": {},\n    \
             \"pool_submitted\": {},\n    \
             \"pool_steals\": {},\n    \"pool_inline\": {},\n    \"allocs\": {},\n    \
             \"dse_pruned\": {},\n    \"dse_probes\": {},\n    \"dse_full_builds\": {}\n  }},",
            t.solve_cache_hits,
            t.solve_cache_misses,
            t.solve_cache_coalesced,
            t.solve_cache_evictions,
            t.pool_submitted,
            t.pool_steals,
            t.pool_inline,
            t.allocs,
            t.dse_pruned,
            t.dse_probes,
            t.dse_full_builds
        ));
        out.push_str("\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    { \"path\": \"");
            escape_json(&s.path, &mut out);
            out.push_str(&format!(
                "\", \"wall_s\": {:.9}, \"solve_cache_hits\": {}, \"solve_cache_misses\": {}, \
                 \"allocs\": {}, \"relaxations\": {} }}",
                s.wall_s, s.solve_cache_hits, s.solve_cache_misses, s.allocs, s.relaxations
            ));
        }
        if self.spans.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // Tests in this module mutate the process-wide tracing flag and the
    // (thread-local) chain; serialize them.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn events_bill_every_collector_on_the_chain() {
        let _l = lock();
        let outer = Collector::new();
        let inner = Collector::new();
        {
            let _o = outer.enter();
            record_solve(false, false);
            {
                let _i = inner.enter();
                record_solve(true, false);
                record_pool_inline(2);
            }
            record_pool_submitted(3);
        }
        let o = outer.snapshot();
        let i = inner.snapshot();
        assert_eq!(o.solve_cache_misses, 1);
        assert_eq!(o.solve_cache_hits, 1);
        assert_eq!(o.pool_inline, 2);
        assert_eq!(o.pool_submitted, 3);
        assert_eq!(i.solve_cache_misses, 0);
        assert_eq!(i.solve_cache_hits, 1);
        assert_eq!(i.pool_inline, 2);
        assert_eq!(i.pool_submitted, 0);
    }

    #[test]
    fn events_outside_any_scope_are_dropped() {
        let _l = lock();
        let c = Collector::new();
        record_solve(true, true);
        record_pool_steal();
        assert_eq!(c.snapshot(), Snapshot::default());
    }

    #[test]
    fn captured_chain_bills_from_another_thread() {
        let _l = lock();
        let c = Collector::new();
        let chain = {
            let _s = c.enter();
            current_chain()
        };
        // The scope has exited on this thread, but the captured chain
        // still routes events recorded by the "worker".
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let _g = chain.activate();
                record_pool_steal();
                record_solve(false, false);
            });
        });
        let snap = c.snapshot();
        assert_eq!(snap.pool_steals, 1);
        assert_eq!(snap.solve_cache_misses, 1);
    }

    #[test]
    fn spans_are_inert_when_tracing_is_disabled() {
        let _l = lock();
        set_tracing(false);
        let c = Collector::new();
        {
            let _s = c.enter();
            let sp = span("build.core");
            sp.note_relaxations(5);
            drop(sp);
        }
        assert!(c.trace().spans.is_empty());
    }

    #[test]
    fn spans_record_path_counters_and_relaxations() {
        let _l = lock();
        let c = Collector::new();
        set_tracing(true);
        {
            let _s = c.enter();
            let sp = span("build.l2");
            record_solve(false, false);
            record_solve(true, false);
            sp.note_relaxations(2);
            drop(sp);
            // A solve after the span closed must not appear in it.
            record_solve(false, false);
        }
        set_tracing(false);
        let trace = c.trace();
        assert_eq!(trace.spans.len(), 1);
        let s = &trace.spans[0];
        assert_eq!(s.path, "build.l2");
        assert_eq!(s.solve_cache_hits, 1);
        assert_eq!(s.solve_cache_misses, 1);
        assert_eq!(s.relaxations, 2);
        assert!(s.wall_s >= 0.0);
        assert_eq!(trace.totals.solve_cache_misses, 2);
    }

    #[test]
    fn nested_spans_propagate_to_all_ancestors() {
        let _l = lock();
        let c = Collector::new();
        set_tracing(true);
        {
            let _s = c.enter();
            let outer = span("build");
            {
                let _inner = span("build.core");
                record_solve(false, false);
            }
            drop(outer);
        }
        set_tracing(false);
        let trace = c.trace();
        let paths: Vec<&str> = trace.spans.iter().map(|s| s.path.as_str()).collect();
        // Children complete first; both land on the root collector.
        assert_eq!(paths, ["build.core", "build"]);
        assert_eq!(trace.spans[1].solve_cache_misses, 1);
    }

    #[test]
    fn trace_json_is_well_formed_and_escaped() {
        let _l = lock();
        let trace = Trace {
            spans: vec![SpanRecord {
                path: String::from("a\"b\\c"),
                wall_s: 0.25,
                solve_cache_hits: 1,
                solve_cache_misses: 2,
                allocs: 3,
                relaxations: 4,
            }],
            totals: Snapshot {
                solve_cache_hits: 1,
                ..Snapshot::default()
            },
        };
        let json = trace.to_json();
        assert!(json.contains("\"schema\": \"mcpat-trace-v1\""));
        assert!(json.contains("a\\\"b\\\\c"));
        assert!(json.contains("\"wall_s\": 0.250000000"));
        assert!(json.contains("\"solve_cache_hits\": 1"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let empty = Trace::default().to_json();
        assert!(empty.contains("\"spans\": []"));
    }

    #[test]
    fn clones_share_counters() {
        let _l = lock();
        let a = Collector::new();
        let b = a.clone();
        {
            let _s = a.enter();
            record_pool_inline(7);
        }
        assert_eq!(b.snapshot().pool_inline, 7);
    }
}
